"""Stratified Incremental Evaluation — Algorithm 2 of the paper (Section 6.2).

Every state of the evolving KG is viewed as a union of non-overlapping strata:
the base graph ``G`` plus one stratum per applied update batch
``Δ_1, …, Δ_k``.  Evaluation results (estimate and variance) of earlier strata
are reused verbatim; when a new batch arrives only that batch's stratum is
sampled (with TWCS) until the *combined* stratified estimate

    µ̂(G + Δ) = Σ_h W_h µ̂_h ,   Var = Σ_h W_h² Var(µ̂_h)

meets the margin-of-error requirement.  Because nothing annotated is ever
discarded, SS is cheaper than the reservoir approach — but a bad initial
estimate of a large stratum persists, which is the fault-tolerance trade-off
shown in Figure 9.

On the position surface (``surface="position"``) the base stratum runs the
TWCS position loop over the (frozen) base graph's CSR index and each update
batch becomes an appended CSR segment sampled with
:class:`~repro.sampling.segment.SegmentTWCSDesign`; labels resolve by integer
position and cost is charged through the position account, so no Triple
objects are materialised anywhere in the update loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.framework import StaticEvaluator
from repro.core.result import EvaluationReport
from repro.evolving.base import IncrementalEvaluator, UpdateEvaluation
from repro.kg.graph import KnowledgeGraph
from repro.kg.updates import UpdateBatch
from repro.labels.oracle import LabelOracle
from repro.sampling.base import Estimate, PositionUnit
from repro.sampling.segment import PositionSegment, SegmentTWCSDesign
from repro.sampling.twcs import TwoStageWeightedClusterDesign

__all__ = ["StratifiedIncrementalEvaluator"]


@dataclass
class _StratumState:
    """Evaluation state of one stratum (the base KG or one update batch)."""

    stratum_id: str
    num_triples: int
    design: TwoStageWeightedClusterDesign | SegmentTWCSDesign
    segment: PositionSegment | None = None

    @property
    def estimate(self) -> Estimate:
        return self.design.estimate()


class StratifiedIncrementalEvaluator(IncrementalEvaluator):
    """Incremental evaluation with one stratum per update batch (Algorithm 2).

    Parameters
    ----------
    min_units_per_stratum:
        Minimum number of cluster draws annotated inside every new stratum
        before its variance estimate is trusted; keeps the combined MoE from
        being declared "satisfied" off a one-cluster stratum sample.
    """

    def __init__(self, *args, min_units_per_stratum: int = 5, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if min_units_per_stratum < 2:
            raise ValueError("min_units_per_stratum must be at least 2")
        self.min_units_per_stratum = min_units_per_stratum
        self._strata: list[_StratumState] = []
        self._rng = np.random.default_rng(self.seed)

    # ------------------------------------------------------------------ #
    # Combined estimator (Eq. 13 over base + update strata)
    # ------------------------------------------------------------------ #
    def _combined_estimate(self) -> Estimate:
        total_triples = sum(stratum.num_triples for stratum in self._strata)
        if total_triples == 0 or not self._strata:
            return Estimate(value=0.0, std_error=math.inf, num_units=0, num_triples=0)
        value = 0.0
        variance = 0.0
        num_units = 0
        num_triples = 0
        undetermined = False
        for stratum in self._strata:
            weight = stratum.num_triples / total_triples
            estimate = stratum.estimate
            num_units += estimate.num_units
            num_triples += estimate.num_triples
            value += weight * estimate.value
            if math.isinf(estimate.std_error):
                undetermined = True
            else:
                variance += weight * weight * estimate.std_error**2
        std_error = math.inf if undetermined else math.sqrt(variance)
        return Estimate(
            value=value, std_error=std_error, num_units=num_units, num_triples=num_triples
        )

    def _build_report(
        self, iterations: int, totals_before: tuple[float, int, int]
    ) -> EvaluationReport:
        estimate = self._combined_estimate()
        satisfied = not math.isinf(estimate.std_error) and estimate.satisfies(
            self.config.moe_target, self.config.confidence_level
        )
        triples, entities, cost_seconds = self._report_fields(totals_before)
        return EvaluationReport(
            estimate=estimate,
            confidence_level=self.config.confidence_level,
            moe_target=self.config.moe_target,
            satisfied=satisfied,
            iterations=iterations,
            num_units=estimate.num_units,
            num_triples_annotated=triples,
            num_entities_identified=entities,
            annotation_cost_seconds=cost_seconds,
        )

    # ------------------------------------------------------------------ #
    # Position-surface annotation
    # ------------------------------------------------------------------ #
    def _charge_units(self, units: list[PositionUnit], segment: PositionSegment | None) -> None:
        """Charge the position account for a batch of drawn cluster units."""
        assert self._account is not None
        current = self.evolving.current
        for unit in units:
            if segment is None:
                entity_key = unit.entity_row
            else:
                entity_key = current.entity_row(segment.subjects[unit.entity_row])
            self._account.charge(entity_key, unit.positions)

    def _drive_position_base(self, design: TwoStageWeightedClusterDesign) -> int:
        """Position-surface twin of the StaticEvaluator loop for the base stratum."""
        assert self._labels is not None
        config = self.config
        run = self._start_parallel_run(segment=None) if self.parallel_mode else None
        iterations = 0
        while True:
            estimate = design.estimate()
            enough = estimate.num_units >= config.min_units
            if enough and estimate.satisfies(config.moe_target, config.confidence_level):
                break
            if config.max_units is not None and estimate.num_units >= config.max_units:
                break
            if run is not None:
                if not self._parallel_step(run, design, None):
                    break
            else:
                units = design.draw_positions(config.batch_size)
                if not units:
                    break
                self._charge_units(units, None)
                design.update_all_positions(units, self._labels)
            iterations += 1
        return iterations

    # ------------------------------------------------------------------ #
    # Sharded draw loops (workers= mode)
    # ------------------------------------------------------------------ #
    def _start_parallel_run(self, segment: PositionSegment | None):
        """One sharded engine run per stratum loop, seeded off the main stream."""
        assert self._labels is not None
        entropy = int(self._rng.integers(np.iinfo(np.int64).max))
        return self.executor().run(
            "twcs",
            self._labels,
            seed=entropy,
            second_stage_size=self.second_stage_size,
            segment=segment,
        )

    def _parallel_step(self, run, design, segment: PositionSegment | None) -> bool:
        """One engine round: charge the account and feed the stratum design.

        Draws arrive in shard order, so the account charges and accumulator
        folds are deterministic regardless of worker count or scheduling.
        Returns whether any unit was drawn.
        """
        assert self._account is not None
        current = self.evolving.current
        drawn = 0
        for draw in run.step(self.config.batch_size):
            for row, positions in zip(draw.rows, draw.unit_positions()):
                if segment is None:
                    entity_key = int(row)
                else:
                    entity_key = current.entity_row(segment.subjects[int(row)])
                self._account.charge(entity_key, positions)
            design.absorb_position_stats(draw.counts, draw.sums)
            drawn += draw.num_units
        return drawn > 0

    # ------------------------------------------------------------------ #
    # IncrementalEvaluator interface
    # ------------------------------------------------------------------ #
    def evaluate_base(self) -> UpdateEvaluation:
        """Evaluate the base graph with static TWCS; it becomes the first stratum."""
        totals_before = self._cost_totals()
        design = TwoStageWeightedClusterDesign(
            self.evolving.base, second_stage_size=self.second_stage_size, seed=self._rng
        )
        if self.position_mode:
            iterations = self._drive_position_base(design)
        else:
            evaluator = StaticEvaluator(design, self.annotator, self.config)
            iterations = evaluator.run(reset=False).iterations
        self._strata.append(
            _StratumState(
                stratum_id="base",
                num_triples=self.evolving.base.num_triples,
                design=design,
            )
        )
        report = self._build_report(iterations, totals_before)
        return self._record("base", report)

    def apply_update(self, batch: UpdateBatch, batch_oracle: LabelOracle) -> UpdateEvaluation:
        """Algorithm 2: sample only inside the new batch's stratum until the MoE holds."""
        if not self._strata:
            raise RuntimeError("evaluate_base() must be called before apply_update()")
        totals_before = self._cost_totals()

        segment: PositionSegment | None = None
        if self.position_mode:
            segment = self._append_update(batch, batch_oracle)
            if segment.num_triples == 0:
                # Every batch triple was a duplicate: nothing new to sample.
                report = self._build_report(0, totals_before)
                return self._record(batch.batch_id, report)
            design: TwoStageWeightedClusterDesign | SegmentTWCSDesign = SegmentTWCSDesign(
                segment, second_stage_size=self.second_stage_size, seed=self._rng
            )
            stratum = _StratumState(
                stratum_id=batch.batch_id,
                num_triples=segment.num_triples,
                design=design,
                segment=segment,
            )
        else:
            flags = self._register_update(batch, batch_oracle)
            # The stratum covers only the triples actually added to G + Δ:
            # re-inserted duplicates already belong to an earlier stratum's
            # weight, and counting them twice would bias the Eq. (13)
            # combination (the position surface dedups identically).
            added = [triple for triple, was_added in zip(batch.triples, flags) if was_added]
            if not added:
                report = self._build_report(0, totals_before)
                return self._record(batch.batch_id, report)
            batch_graph = KnowledgeGraph(added, name=batch.batch_id)
            design = TwoStageWeightedClusterDesign(
                batch_graph, second_stage_size=self.second_stage_size, seed=self._rng
            )
            stratum = _StratumState(
                stratum_id=batch.batch_id, num_triples=len(added), design=design
            )
        self._strata.append(stratum)

        config = self.config
        run = None
        if self.position_mode and self.parallel_mode:
            run = self._start_parallel_run(segment=segment)
        iterations = 0
        while True:
            stratum_estimate = stratum.estimate
            combined = self._combined_estimate()
            stratum_ready = stratum_estimate.num_units >= self.min_units_per_stratum
            if (
                stratum_ready
                and not math.isinf(combined.std_error)
                and combined.satisfies(config.moe_target, config.confidence_level)
            ):
                break
            if config.max_units is not None and combined.num_units >= config.max_units:
                break
            if run is not None:
                if not self._parallel_step(run, design, segment):
                    break
                iterations += 1
            elif self.position_mode:
                assert self._labels is not None
                units = design.draw_positions(config.batch_size)
                if not units:
                    break
                iterations += 1
                self._charge_units(units, segment)
                design.update_all_positions(units, self._labels)
            else:
                object_units = design.draw(config.batch_size)
                if not object_units:
                    break
                iterations += 1
                for unit in object_units:
                    result = self.annotator.annotate_triples(unit.triples)
                    design.update(unit, result.labels)

        report = self._build_report(iterations, totals_before)
        return self._record(batch.batch_id, report)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_strata(self) -> int:
        """Number of strata tracked so far (base plus applied batches)."""
        return len(self._strata)

    def stratum_estimates(self) -> list[tuple[str, Estimate]]:
        """Return the current per-stratum estimates."""
        return [(stratum.stratum_id, stratum.estimate) for stratum in self._strata]
