"""Stratified Incremental Evaluation — Algorithm 2 of the paper (Section 6.2).

Every state of the evolving KG is viewed as a union of non-overlapping strata:
the base graph ``G`` plus one stratum per applied update batch
``Δ_1, …, Δ_k``.  Evaluation results (estimate and variance) of earlier strata
are reused verbatim; when a new batch arrives only that batch's stratum is
sampled (with TWCS) until the *combined* stratified estimate

    µ̂(G + Δ) = Σ_h W_h µ̂_h ,   Var = Σ_h W_h² Var(µ̂_h)

meets the margin-of-error requirement.  Because nothing annotated is ever
discarded, SS is cheaper than the reservoir approach — but a bad initial
estimate of a large stratum persists, which is the fault-tolerance trade-off
shown in Figure 9.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.framework import StaticEvaluator
from repro.core.result import EvaluationReport
from repro.evolving.base import IncrementalEvaluator, UpdateEvaluation
from repro.kg.updates import UpdateBatch
from repro.labels.oracle import LabelOracle
from repro.sampling.base import Estimate
from repro.sampling.twcs import TwoStageWeightedClusterDesign

__all__ = ["StratifiedIncrementalEvaluator"]


@dataclass
class _StratumState:
    """Evaluation state of one stratum (the base KG or one update batch)."""

    stratum_id: str
    num_triples: int
    design: TwoStageWeightedClusterDesign

    @property
    def estimate(self) -> Estimate:
        return self.design.estimate()


class StratifiedIncrementalEvaluator(IncrementalEvaluator):
    """Incremental evaluation with one stratum per update batch (Algorithm 2).

    Parameters
    ----------
    min_units_per_stratum:
        Minimum number of cluster draws annotated inside every new stratum
        before its variance estimate is trusted; keeps the combined MoE from
        being declared "satisfied" off a one-cluster stratum sample.
    """

    def __init__(self, *args, min_units_per_stratum: int = 5, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if min_units_per_stratum < 2:
            raise ValueError("min_units_per_stratum must be at least 2")
        self.min_units_per_stratum = min_units_per_stratum
        self._strata: list[_StratumState] = []
        self._rng = np.random.default_rng(self.seed)

    # ------------------------------------------------------------------ #
    # Combined estimator (Eq. 13 over base + update strata)
    # ------------------------------------------------------------------ #
    def _combined_estimate(self) -> Estimate:
        total_triples = sum(stratum.num_triples for stratum in self._strata)
        if total_triples == 0 or not self._strata:
            return Estimate(value=0.0, std_error=math.inf, num_units=0, num_triples=0)
        value = 0.0
        variance = 0.0
        num_units = 0
        num_triples = 0
        undetermined = False
        for stratum in self._strata:
            weight = stratum.num_triples / total_triples
            estimate = stratum.estimate
            num_units += estimate.num_units
            num_triples += estimate.num_triples
            value += weight * estimate.value
            if math.isinf(estimate.std_error):
                undetermined = True
            else:
                variance += weight * weight * estimate.std_error**2
        std_error = math.inf if undetermined else math.sqrt(variance)
        return Estimate(
            value=value, std_error=std_error, num_units=num_units, num_triples=num_triples
        )

    def _build_report(
        self,
        iterations: int,
        cost_before: float,
        triples_before: int,
        entities_before: int,
    ) -> EvaluationReport:
        estimate = self._combined_estimate()
        satisfied = not math.isinf(estimate.std_error) and estimate.satisfies(
            self.config.moe_target, self.config.confidence_level
        )
        return EvaluationReport(
            estimate=estimate,
            confidence_level=self.config.confidence_level,
            moe_target=self.config.moe_target,
            satisfied=satisfied,
            iterations=iterations,
            num_units=estimate.num_units,
            num_triples_annotated=self.annotator.total_triples_annotated - triples_before,
            num_entities_identified=self.annotator.entities_identified - entities_before,
            annotation_cost_seconds=self.annotator.total_cost_seconds - cost_before,
        )

    # ------------------------------------------------------------------ #
    # IncrementalEvaluator interface
    # ------------------------------------------------------------------ #
    def evaluate_base(self) -> UpdateEvaluation:
        """Evaluate the base graph with static TWCS; it becomes the first stratum."""
        cost_before = self.annotator.total_cost_seconds
        triples_before = self.annotator.total_triples_annotated
        entities_before = self.annotator.entities_identified
        design = TwoStageWeightedClusterDesign(
            self.evolving.base, second_stage_size=self.second_stage_size, seed=self._rng
        )
        evaluator = StaticEvaluator(design, self.annotator, self.config)
        base_report = evaluator.run(reset=False)
        self._strata.append(
            _StratumState(
                stratum_id="base",
                num_triples=self.evolving.base.num_triples,
                design=design,
            )
        )
        report = self._build_report(
            base_report.iterations, cost_before, triples_before, entities_before
        )
        return self._record("base", report)

    def apply_update(self, batch: UpdateBatch, batch_oracle: LabelOracle) -> UpdateEvaluation:
        """Algorithm 2: sample only inside the new batch's stratum until the MoE holds."""
        if not self._strata:
            raise RuntimeError("evaluate_base() must be called before apply_update()")
        self._register_update(batch, batch_oracle)
        cost_before = self.annotator.total_cost_seconds
        triples_before = self.annotator.total_triples_annotated
        entities_before = self.annotator.entities_identified

        batch_graph = batch.as_knowledge_graph()
        design = TwoStageWeightedClusterDesign(
            batch_graph, second_stage_size=self.second_stage_size, seed=self._rng
        )
        stratum = _StratumState(
            stratum_id=batch.batch_id, num_triples=batch.size, design=design
        )
        self._strata.append(stratum)

        config = self.config
        iterations = 0
        while True:
            stratum_estimate = stratum.estimate
            combined = self._combined_estimate()
            stratum_ready = stratum_estimate.num_units >= self.min_units_per_stratum
            if (
                stratum_ready
                and not math.isinf(combined.std_error)
                and combined.satisfies(config.moe_target, config.confidence_level)
            ):
                break
            if config.max_units is not None and combined.num_units >= config.max_units:
                break
            units = design.draw(config.batch_size)
            if not units:
                break
            iterations += 1
            for unit in units:
                result = self.annotator.annotate_triples(unit.triples)
                design.update(unit, result.labels)

        report = self._build_report(iterations, cost_before, triples_before, entities_before)
        return self._record(batch.batch_id, report)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_strata(self) -> int:
        """Number of strata tracked so far (base plus applied batches)."""
        return len(self._strata)

    def stratum_estimates(self) -> list[tuple[str, Estimate]]:
        """Return the current per-stratum estimates."""
        return [(stratum.stratum_id, stratum.estimate) for stratum in self._strata]
