"""Incremental accuracy evaluation on evolving knowledge graphs (Section 6).

Three evaluators share the interface of
:class:`~repro.evolving.base.IncrementalEvaluator`:

* :class:`~repro.evolving.baseline.BaselineEvolvingEvaluator` — re-runs a
  fresh static TWCS evaluation on every snapshot, discarding earlier
  annotations (the paper's Baseline);
* :class:`~repro.evolving.reservoir_eval.ReservoirIncrementalEvaluator` —
  Algorithm 1: keeps a size-weighted reservoir of annotated clusters,
  stochastically refreshing it as insertion batches arrive;
* :class:`~repro.evolving.stratified_eval.StratifiedIncrementalEvaluator` —
  Algorithm 2: treats the base KG and every update batch as independent
  strata, fully reusing earlier estimates and only annotating inside the new
  stratum.

:class:`~repro.evolving.monitor.EvolvingAccuracyMonitor` drives any of them
over a sequence of update batches and records the estimate trajectory
(Section 7.3.2 / Figure 9).
"""

from repro.evolving.base import IncrementalEvaluator, UpdateEvaluation
from repro.evolving.baseline import BaselineEvolvingEvaluator
from repro.evolving.monitor import EvolvingAccuracyMonitor, MonitorRecord
from repro.evolving.reservoir_eval import ReservoirIncrementalEvaluator
from repro.evolving.stratified_eval import StratifiedIncrementalEvaluator

__all__ = [
    "IncrementalEvaluator",
    "UpdateEvaluation",
    "BaselineEvolvingEvaluator",
    "ReservoirIncrementalEvaluator",
    "StratifiedIncrementalEvaluator",
    "EvolvingAccuracyMonitor",
    "MonitorRecord",
]
