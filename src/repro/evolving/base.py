"""Common interface of the evolving-KG evaluators."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.core.config import EvaluationConfig
from repro.core.result import EvaluationReport
from repro.cost.annotator import SimulatedAnnotator
from repro.cost.model import CostModel
from repro.generators.datasets import LabelledKG
from repro.kg.updates import EvolvingKnowledgeGraph, UpdateBatch
from repro.labels.oracle import LabelOracle

__all__ = ["UpdateEvaluation", "IncrementalEvaluator"]


@dataclass(frozen=True)
class UpdateEvaluation:
    """The outcome of evaluating one KG state (base or after an update batch).

    Attributes
    ----------
    batch_id:
        ``"base"`` for the initial evaluation, otherwise the update batch id.
    report:
        The evaluation report for this state; its cost fields cover only the
        *incremental* work done for this state (annotations reused from
        earlier states cost nothing).
    cumulative_cost_seconds:
        Total annotation cost spent since the evaluator was created.
    """

    batch_id: str
    report: EvaluationReport
    cumulative_cost_seconds: float

    @property
    def accuracy(self) -> float:
        """Point estimate of overall KG accuracy at this state."""
        return self.report.accuracy

    @property
    def incremental_cost_hours(self) -> float:
        """Annotation hours spent specifically for this state."""
        return self.report.annotation_cost_hours

    @property
    def cumulative_cost_hours(self) -> float:
        """Annotation hours spent since the evaluator was created."""
        return self.cumulative_cost_seconds / 3600.0


class IncrementalEvaluator(ABC):
    """Base class for evaluators that track an evolving knowledge graph.

    Subclasses are constructed around a labelled base KG and then fed update
    batches one at a time.  They own an annotator whose session spans the
    whole lifetime of the evaluator, so annotations paid for earlier states
    are naturally reused (or deliberately discarded, in the Baseline's case).

    Parameters
    ----------
    base:
        The labelled base knowledge graph ``G``.
    config:
        Quality requirement applied to every state (default: 5 % MoE, 95 %).
    cost_model:
        Annotation cost parameters (default: the paper's fitted c1/c2).
    second_stage_size:
        TWCS second-stage cap ``m`` used by all evaluators.
    seed:
        Seed for all randomness (sampling and reservoir keys).
    """

    def __init__(
        self,
        base: LabelledKG,
        config: EvaluationConfig | None = None,
        cost_model: CostModel | None = None,
        second_stage_size: int = 5,
        seed: int | None = None,
    ) -> None:
        self.config = config if config is not None else EvaluationConfig()
        self.second_stage_size = second_stage_size
        self.seed = seed
        self.evolving = EvolvingKnowledgeGraph(base.graph)
        self.oracle = LabelOracle(base.oracle.as_dict())
        self.annotator = SimulatedAnnotator(self.oracle, cost_model=cost_model, seed=seed)
        self.history: list[UpdateEvaluation] = []
        # Cost charged in annotator sessions that have since been reset (only
        # the Baseline resets sessions); added back so cumulative cost is
        # monotone across snapshots for every evaluator.
        self._discarded_cost_seconds = 0.0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @abstractmethod
    def evaluate_base(self) -> UpdateEvaluation:
        """Evaluate the base graph ``G`` and remember the result."""

    @abstractmethod
    def apply_update(self, batch: UpdateBatch, batch_oracle: LabelOracle) -> UpdateEvaluation:
        """Apply one insertion batch and re-evaluate ``G + Δ`` incrementally."""

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #
    def _register_update(self, batch: UpdateBatch, batch_oracle: LabelOracle) -> None:
        """Record the batch in the evolving graph and extend the oracle."""
        self.oracle.extend(batch_oracle)
        self.evolving.apply(batch)

    def _record(self, batch_id: str, report: EvaluationReport) -> UpdateEvaluation:
        evaluation = UpdateEvaluation(
            batch_id=batch_id,
            report=report,
            cumulative_cost_seconds=self.annotator.total_cost_seconds
            + self._discarded_cost_seconds,
        )
        self.history.append(evaluation)
        return evaluation

    @property
    def latest(self) -> UpdateEvaluation:
        """The most recent evaluation result.

        Raises
        ------
        IndexError
            If no evaluation has been performed yet.
        """
        return self.history[-1]

    @property
    def total_cost_hours(self) -> float:
        """Total annotation hours spent by this evaluator so far."""
        return (self.annotator.total_cost_seconds + self._discarded_cost_seconds) / 3600.0
