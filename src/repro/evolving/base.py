"""Common interface of the evolving-KG evaluators."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.core.config import EvaluationConfig
from repro.core.result import EvaluationReport
from repro.cost.annotator import PositionAnnotationAccount, SimulatedAnnotator
from repro.cost.model import CostModel
from repro.generators.datasets import LabelledKG
from repro.kg.updates import EvolvingKnowledgeGraph, UpdateBatch
from repro.labels.oracle import LabelOracle
from repro.obs import metrics as obs_metrics
from repro.sampling.segment import PositionSegment

__all__ = ["UpdateEvaluation", "IncrementalEvaluator"]

_SURFACES = ("object", "position")


@dataclass(frozen=True)
class UpdateEvaluation:
    """The outcome of evaluating one KG state (base or after an update batch).

    Attributes
    ----------
    batch_id:
        ``"base"`` for the initial evaluation, otherwise the update batch id.
    report:
        The evaluation report for this state; its cost fields cover only the
        *incremental* work done for this state (annotations reused from
        earlier states cost nothing).
    cumulative_cost_seconds:
        Total annotation cost spent since the evaluator was created.
    """

    batch_id: str
    report: EvaluationReport
    cumulative_cost_seconds: float

    @property
    def accuracy(self) -> float:
        """Point estimate of overall KG accuracy at this state."""
        return self.report.accuracy

    @property
    def incremental_cost_hours(self) -> float:
        """Annotation hours spent specifically for this state."""
        return self.report.annotation_cost_hours

    @property
    def cumulative_cost_hours(self) -> float:
        """Annotation hours spent since the evaluator was created."""
        return self.cumulative_cost_seconds / 3600.0


class IncrementalEvaluator(ABC):
    """Base class for evaluators that track an evolving knowledge graph.

    Subclasses are constructed around a labelled base KG and then fed update
    batches one at a time.  They own an annotator whose session spans the
    whole lifetime of the evaluator, so annotations paid for earlier states
    are naturally reused (or deliberately discarded, in the Baseline's case).

    Parameters
    ----------
    base:
        The labelled base knowledge graph ``G``.
    config:
        Quality requirement applied to every state (default: 5 % MoE, 95 %).
    cost_model:
        Annotation cost parameters (default: the paper's fitted c1/c2).
    second_stage_size:
        TWCS second-stage cap ``m`` used by all evaluators.
    seed:
        Seed for all randomness (sampling and reservoir keys).
    surface:
        ``"object"`` (default) — annotation flows through Triple objects and
        a :class:`~repro.cost.annotator.SimulatedAnnotator`, the seed
        behaviour.  ``"position"`` — sampling, labels and cost accounting run
        on integer triple positions and boolean label arrays, with update
        batches handled as appended CSR segments; on a columnar base the
        evolved graph is a zero-copy
        :class:`~repro.storage.delta.DeltaStore` view.  Position-mode runs
        consume the random stream identically on every storage backend, so a
        fixed seed yields bit-identical estimates across backends.
    position_labels:
        Ground-truth labels for the base graph as a position-aligned boolean
        array (position mode only).  When omitted it is derived from the base
        oracle with one O(M) pass; passing it (e.g. from a format-v2 snapshot)
        skips that pass entirely.
    workers:
        Position mode only.  ``None`` (default) keeps the single-stream
        serial draw loops.  ``0`` routes the parallelisable draw loops (base
        stratum, update segments) through the sharded engine executed
        in-process — the parity reference; ``>= 1`` fans them across that
        many worker processes.  For a fixed ``num_shards`` every setting of
        ``workers >= 0`` yields bit-identical estimate trajectories.
    num_shards:
        Shard count for the sharded draw loops (default: the transport's
        node/worker count when one is given, else ``max(workers, 1)``);
        part of the run's random-stream identity.
    transport:
        Position mode only.  An explicit
        :class:`~repro.sampling.parallel.ShardTransport` the sharded draw
        loops execute on — e.g. a
        :class:`~repro.sampling.rpc.SocketRPCTransport` over remote worker
        nodes (with shared-secret auth via ``secret=``, task pipelining via
        ``window=`` and late-joining workers via ``join_address=`` — none
        of which perturb the trajectory).  Mutually exclusive with
        ``workers``; for a fixed ``num_shards`` every transport yields
        bit-identical estimate trajectories (serial == pool == RPC,
        regardless of window size, node churn or work stealing).  The
        evaluator owns the transport: :meth:`close` closes it.
    compact_threshold:
        When set and the evolving graph is delta-backed, re-freeze the tail
        into the base whenever it outgrows this fraction of the base
        (:meth:`~repro.storage.delta.DeltaStore.maybe_compact`).  Compaction
        preserves every position, row and per-cluster order, so estimate
        trajectories are bit-identical either way — but a compacted run can
        no longer be captured as snapshot-v3 evaluator state (the tail has
        been folded into the base).
    """

    def __init__(
        self,
        base: LabelledKG,
        config: EvaluationConfig | None = None,
        cost_model: CostModel | None = None,
        second_stage_size: int = 5,
        seed: int | None = None,
        surface: str = "object",
        position_labels: np.ndarray | None = None,
        workers: int | None = None,
        num_shards: int | None = None,
        transport=None,
        compact_threshold: float | None = None,
    ) -> None:
        if surface not in _SURFACES:
            raise ValueError(f"surface must be one of {_SURFACES}, got {surface!r}")
        if (workers is not None or transport is not None) and surface != "position":
            raise ValueError("workers/transport requires surface='position'")
        if workers is not None and transport is not None:
            raise ValueError("pass either workers= or transport=, not both")
        self.config = config if config is not None else EvaluationConfig()
        self.second_stage_size = second_stage_size
        self.seed = seed
        self.surface = surface
        self.workers = workers
        self.transport = transport
        if num_shards is not None:
            self.num_shards = num_shards
        elif transport is not None and getattr(transport, "default_shards", None):
            # A multi-node transport defaults to one shard per node, so the
            # distribution the caller configured is actually exercised.
            self.num_shards = transport.default_shards
        else:
            self.num_shards = max(workers or 1, 1)
        self._executor = None
        self.evolving = EvolvingKnowledgeGraph(base.graph, compact_threshold=compact_threshold)
        # Vocabulary size of the untouched base, recorded before any batch
        # interns new strings; state persistence (snapshot format v3) uses it
        # to capture exactly the strings an update stream added.
        vocab = getattr(base.graph.backend, "vocab", None)
        self._base_vocab_size = len(vocab) if vocab is not None else None
        if surface == "position":
            # The oracle is only read (never extended) in position mode: the
            # ground truth lives in the position-aligned label array, which is
            # extended per batch instead.
            self.oracle = base.oracle
            if position_labels is not None:
                self._labels = np.asarray(position_labels, dtype=bool)
                if self._labels.shape[0] != base.graph.num_triples:
                    raise ValueError(
                        "position_labels must be aligned with the base graph "
                        f"({self._labels.shape[0]} labels, "
                        f"{base.graph.num_triples} triples)"
                    )
            else:
                self._labels = base.oracle.as_position_array(base.graph)
            self._account: PositionAnnotationAccount | None = PositionAnnotationAccount(cost_model)
        else:
            self.oracle = LabelOracle(base.oracle.as_dict())
            self._labels = None
            self._account = None
        self.annotator = SimulatedAnnotator(self.oracle, cost_model=cost_model, seed=seed)
        self.history: list[UpdateEvaluation] = []
        # Cost charged in annotator sessions that have since been reset (only
        # the Baseline resets sessions); added back so cumulative cost is
        # monotone across snapshots for every evaluator.
        self._discarded_cost_seconds = 0.0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @abstractmethod
    def evaluate_base(self) -> UpdateEvaluation:
        """Evaluate the base graph ``G`` and remember the result."""

    @abstractmethod
    def apply_update(self, batch: UpdateBatch, batch_oracle: LabelOracle) -> UpdateEvaluation:
        """Apply one insertion batch and re-evaluate ``G + Δ`` incrementally."""

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #
    @property
    def position_mode(self) -> bool:
        """Whether this evaluator runs on the position surface."""
        return self.surface == "position"

    @property
    def parallel_mode(self) -> bool:
        """Whether draw loops route through the sharded engine."""
        return self.workers is not None or self.transport is not None

    def executor(self):
        """The lazily created shard executor over the base graph (parallel mode)."""
        if self._executor is None:
            from repro.sampling.parallel import ParallelSamplingExecutor

            self._executor = ParallelSamplingExecutor(
                self.evolving.base,
                workers=self.workers or None,
                num_shards=self.num_shards,
                transport=self.transport,
            )
        return self._executor

    def close(self) -> None:
        """Shut down the worker pool, if one was started."""
        if self._executor is not None:
            self._executor.close()
            self._executor = None

    @property
    def labels(self) -> np.ndarray | None:
        """Position-aligned ground-truth labels (position mode only)."""
        return self._labels

    @property
    def account(self) -> PositionAnnotationAccount | None:
        """The position-surface cost account (position mode only)."""
        return self._account

    def _register_update(self, batch: UpdateBatch, batch_oracle: LabelOracle) -> list[bool]:
        """Record the batch in the evolving graph and extend the oracle.

        Returns the per-triple added flags (``False`` for duplicates the
        graph already contained).
        """
        self.oracle.extend(batch_oracle)
        return self.evolving.apply(batch)

    def _append_update(self, batch: UpdateBatch, batch_oracle: LabelOracle) -> PositionSegment:
        """Position-mode twin of :meth:`_register_update`.

        Applies the batch, extends the label array with the batch's ground
        truth and returns the appended CSR segment the evaluator samples.
        """
        assert self._labels is not None
        first_position = self.evolving.current.num_triples
        flags = self.evolving.apply(batch)
        segment = PositionSegment.from_batch(batch.triples, flags, first_position)
        batch_labels = np.fromiter(
            (
                batch_oracle.label(triple)
                for triple, added in zip(batch.triples, flags)
                if added
            ),
            dtype=bool,
            count=segment.num_triples,
        )
        self._labels = np.concatenate([self._labels, batch_labels])
        return segment

    def current_true_accuracy(self) -> float:
        """Exact accuracy of the evolved graph under the ground truth.

        O(1)-ish in position mode (one array mean); one O(M) oracle pass in
        object mode.
        """
        if self._labels is not None:
            if self._labels.shape[0] == 0:
                return 0.0
            return float(self._labels.mean())
        return self.oracle.true_accuracy(self.evolving.current)

    # ------------------------------------------------------------------ #
    # Unified cost accounting across surfaces
    # ------------------------------------------------------------------ #
    def _cost_totals(self) -> tuple[float, int, int]:
        """Current ``(cost_seconds, triples_annotated, entities_identified)``."""
        if self._account is not None:
            return (
                self._account.total_cost_seconds,
                self._account.total_triples_annotated,
                self._account.entities_identified,
            )
        return (
            self.annotator.total_cost_seconds,
            self.annotator.total_triples_annotated,
            self.annotator.entities_identified,
        )

    def _report_fields(self, totals_before: tuple[float, int, int]) -> tuple[int, int, float]:
        """Incremental ``(triples, entities, cost_seconds)`` since ``totals_before``."""
        cost_now, triples_now, entities_now = self._cost_totals()
        cost_before, triples_before, entities_before = totals_before
        return (
            triples_now - triples_before,
            entities_now - entities_before,
            cost_now - cost_before,
        )

    def _record(self, batch_id: str, report: EvaluationReport) -> UpdateEvaluation:
        cost_now, triples_now, entities_now = self._cost_totals()
        # Annotation-cost deltas since the previous recorded state: the
        # counters advance batch by batch even though the account only
        # exposes cumulative totals.
        last_cost, last_triples, last_entities = getattr(
            self, "_obs_last_totals", (0.0, 0, 0)
        )
        kind = type(self).__name__
        obs_metrics.counter("annotation_cost_seconds_total", evaluator=kind).inc(
            max(0.0, cost_now - last_cost)
        )
        obs_metrics.counter("annotation_triples_total", evaluator=kind).inc(
            max(0, triples_now - last_triples)
        )
        obs_metrics.counter("annotation_entities_total", evaluator=kind).inc(
            max(0, entities_now - last_entities)
        )
        self._obs_last_totals = (cost_now, triples_now, entities_now)
        evaluation = UpdateEvaluation(
            batch_id=batch_id,
            report=report,
            cumulative_cost_seconds=cost_now + self._discarded_cost_seconds,
        )
        self.history.append(evaluation)
        return evaluation

    @property
    def latest(self) -> UpdateEvaluation:
        """The most recent evaluation result.

        Raises
        ------
        IndexError
            If no evaluation has been performed yet.
        """
        return self.history[-1]

    @property
    def total_cost_hours(self) -> float:
        """Total annotation hours spent by this evaluator so far."""
        return (self._cost_totals()[0] + self._discarded_cost_seconds) / 3600.0
