"""Continuous accuracy monitoring over a sequence of update batches.

Section 7.3.2 of the paper monitors the overall accuracy of an evolving KG as
30 update batches arrive, comparing how the reservoir-based and stratified
incremental evaluators track the (changing) ground truth and how they recover
from a deliberately bad initial estimate.  :class:`EvolvingAccuracyMonitor`
drives any :class:`~repro.evolving.base.IncrementalEvaluator` over such a
sequence and records the trajectory.
"""

from __future__ import annotations

import time
from collections.abc import Iterable
from dataclasses import dataclass

from repro.evolving.base import IncrementalEvaluator
from repro.kg.updates import UpdateBatch
from repro.labels.oracle import LabelOracle
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.logging import get_logger

__all__ = ["MonitorRecord", "EvolvingAccuracyMonitor"]

_log = get_logger("evolving.monitor")


@dataclass(frozen=True)
class MonitorRecord:
    """One point of the monitored accuracy trajectory."""

    batch_index: int
    batch_id: str
    estimated_accuracy: float
    margin_of_error: float
    true_accuracy: float
    incremental_cost_hours: float
    cumulative_cost_hours: float

    @property
    def estimation_error(self) -> float:
        """Absolute difference between estimate and ground truth."""
        return abs(self.estimated_accuracy - self.true_accuracy)


class EvolvingAccuracyMonitor:
    """Runs an incremental evaluator over a stream of update batches.

    Parameters
    ----------
    evaluator:
        Any incremental evaluator (baseline, reservoir or stratified).  The
        monitor calls ``evaluate_base()`` lazily on the first use if the
        caller has not already done so.
    """

    def __init__(self, evaluator: IncrementalEvaluator) -> None:
        self.evaluator = evaluator
        self.records: list[MonitorRecord] = []

    def _true_accuracy(self) -> float:
        # One array mean in position mode; a full oracle pass in object mode.
        return self.evaluator.current_true_accuracy()

    def evaluate_base(self) -> MonitorRecord:
        """Evaluate the base graph and record the starting point."""
        evaluation = self.evaluator.evaluate_base()
        record = MonitorRecord(
            batch_index=0,
            batch_id="base",
            estimated_accuracy=evaluation.accuracy,
            margin_of_error=evaluation.report.margin_of_error,
            true_accuracy=self._true_accuracy(),
            incremental_cost_hours=evaluation.incremental_cost_hours,
            cumulative_cost_hours=evaluation.cumulative_cost_hours,
        )
        self.records.append(record)
        return record

    def apply_update(self, batch: UpdateBatch, batch_oracle: LabelOracle) -> MonitorRecord:
        """Apply one update batch, re-evaluate and record the new point."""
        if not self.records:
            self.evaluate_base()
        started = time.perf_counter()
        with obs_trace.span("evolving.apply_update", batch=batch.batch_id):
            evaluation = self.evaluator.apply_update(batch, batch_oracle)
        elapsed = time.perf_counter() - started
        obs_metrics.histogram("evolving_batch_update_seconds").observe(elapsed)
        _log.debug(
            "batch_applied",
            batch=batch.batch_id,
            elapsed=round(elapsed, 6),
            accuracy=evaluation.accuracy,
            cost_hours=evaluation.incremental_cost_hours,
        )
        record = MonitorRecord(
            batch_index=len(self.records),
            batch_id=batch.batch_id,
            estimated_accuracy=evaluation.accuracy,
            margin_of_error=evaluation.report.margin_of_error,
            true_accuracy=self._true_accuracy(),
            incremental_cost_hours=evaluation.incremental_cost_hours,
            cumulative_cost_hours=evaluation.cumulative_cost_hours,
        )
        self.records.append(record)
        return record

    def run(self, updates: Iterable[tuple[UpdateBatch, LabelOracle]]) -> list[MonitorRecord]:
        """Process a whole stream of ``(batch, labels)`` pairs and return the trajectory."""
        if not self.records:
            self.evaluate_base()
        for batch, batch_oracle in updates:
            self.apply_update(batch, batch_oracle)
        return list(self.records)

    @property
    def total_cost_hours(self) -> float:
        """Total annotation hours spent across the whole monitored sequence."""
        return self.evaluator.total_cost_hours
