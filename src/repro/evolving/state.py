"""Persist and restore incremental-evaluator state (snapshot format v3).

A monitoring run over an evolving KG accumulates three kinds of state that a
plain graph snapshot (format v2) cannot capture: the sampling state
(reservoir keys and candidate heaps, or per-stratum accumulators), the
annotation account (which positions are paid for) and the random streams.
This module captures all of it as an explicit state dictionary so a run can
stop after any update batch and resume later with a **bit-identical**
trajectory, as if it had never been interrupted.

Supported evaluators: :class:`~repro.evolving.reservoir_eval.
ReservoirIncrementalEvaluator` and :class:`~repro.evolving.stratified_eval.
StratifiedIncrementalEvaluator` on the *position surface* with a
columnar/delta-backed evolving graph (the configuration ``repro monitor
--backend columnar`` runs).  Capture at a batch boundary — after
``evaluate_base()`` or any ``apply_update()`` returns.

The state dictionary contains NumPy arrays, plain scalars and the package's
own small dataclasses (``RunningMean``, ``PositionSegment``, reservoir
entries, reports); :class:`~repro.storage.snapshot.SnapshotStore` serialises
it with :mod:`pickle` next to the graph columns.  The delta tail is stored
as interned id columns plus the vocabulary strings the update stream added,
and replayed through :meth:`~repro.storage.delta.DeltaStore.restore_tail`
on load.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.config import EvaluationConfig
from repro.cost.annotator import PositionAnnotationAccount
from repro.generators.datasets import LabelledKG
from repro.sampling.segment import SegmentTWCSDesign
from repro.sampling.twcs import TwoStageWeightedClusterDesign
from repro.storage.delta import DeltaStore

__all__ = ["STATE_FORMAT_VERSION", "capture_evaluator_state", "restore_evaluator"]

STATE_FORMAT_VERSION = 3

_KINDS = {"rs": "ReservoirIncrementalEvaluator", "ss": "StratifiedIncrementalEvaluator"}


def _kind_of(evaluator) -> str:
    name = type(evaluator).__name__
    for kind, cls_name in _KINDS.items():
        if name == cls_name:
            return kind
    raise ValueError(f"state persistence does not support {name}")


def _require_delta(evaluator) -> DeltaStore:
    backend = evaluator.evolving.current.backend
    if not isinstance(backend, DeltaStore):
        raise ValueError(
            "state persistence requires a columnar (delta-backed) evolving "
            "graph; build the base with backend='columnar'"
        )
    return backend


# --------------------------------------------------------------------------- #
# Capture
# --------------------------------------------------------------------------- #
def capture_evaluator_state(evaluator) -> dict:
    """Snapshot everything needed to resume ``evaluator`` mid-sequence."""
    kind = _kind_of(evaluator)
    if not evaluator.position_mode:
        raise ValueError("state persistence requires surface='position'")
    delta = _require_delta(evaluator)
    if delta.base.num_triples != evaluator.evolving.base.num_triples:
        # A compaction folded update triples into the delta's base; the
        # captured tail would silently lose them on restore.
        raise ValueError(
            "cannot capture evaluator state after the delta view was "
            "compacted; capture before compact() runs, or leave "
            "compact_threshold unset on monitored evaluators"
        )
    account = evaluator.account
    assert account is not None and evaluator.labels is not None
    assert evaluator._base_vocab_size is not None
    vocab = delta.base.vocab
    tail_s, tail_p, tail_o, tail_f = delta.tail_arrays()
    state: dict = {
        "format": STATE_FORMAT_VERSION,
        "kind": kind,
        "seed": evaluator.seed,
        "second_stage_size": evaluator.second_stage_size,
        "config": dataclasses.asdict(evaluator.config),
        "cost_model": account.cost_model,
        "rng_state": evaluator._rng.bit_generator.state,
        "labels": np.asarray(evaluator.labels, dtype=bool).copy(),
        "account": {
            "identified": np.asarray(sorted(account._identified), dtype=np.int64),
            "annotated": np.asarray(sorted(account._annotated), dtype=np.int64),
            "total_seconds": account._total_seconds,
        },
        "discarded_cost_seconds": evaluator._discarded_cost_seconds,
        "history": list(evaluator.history),
        "base_vocab_size": evaluator._base_vocab_size,
        "base_triples": evaluator.evolving.base.num_triples,
        "vocab_ext": [vocab[i] for i in range(evaluator._base_vocab_size, len(vocab))],
        "tail": {
            "subjects": tail_s,
            "predicates": tail_p,
            "objects": tail_o,
            "flags": tail_f,
        },
    }
    if kind == "rs":
        state["reservoir"] = list(evaluator._reservoir)
        state["candidates"] = list(evaluator._candidates)
        state["tiebreak"] = evaluator._tiebreak
        state["replacements"] = evaluator._replacements_total
        state["stats"] = evaluator._stats.copy()
        state["stats_triples"] = evaluator._stats_triples
    else:
        state["min_units_per_stratum"] = evaluator.min_units_per_stratum
        state["strata"] = [
            {
                "stratum_id": stratum.stratum_id,
                "num_triples": stratum.num_triples,
                "segment": stratum.segment,
                "mean": stratum.design._cluster_means.copy(),
                "design_triples": stratum.design._num_triples,
            }
            for stratum in evaluator._strata
        ]
    return state


# --------------------------------------------------------------------------- #
# Restore
# --------------------------------------------------------------------------- #
def restore_evaluator(
    state: dict,
    base: LabelledKG,
    workers: int | None = None,
    num_shards: int | None = None,
    transport=None,
):
    """Rebuild an evaluator from a captured state over the same base KG.

    ``base`` must be (a reload of) the graph the state was captured against
    — same triples, same vocabulary; the delta tail and all sampling state
    are replayed on top of it.  ``workers`` / ``num_shards`` / ``transport``
    may differ from the original run (they only affect *future* draw loops
    and where they execute; for bit-identical continuation pass the original
    ``num_shards`` — the transport never changes a trajectory).
    """
    version = int(state.get("format", 0))
    if version > STATE_FORMAT_VERSION:
        raise ValueError(
            f"evaluator state format v{version} is newer than supported "
            f"v{STATE_FORMAT_VERSION}"
        )
    from repro.evolving.reservoir_eval import ReservoirIncrementalEvaluator
    from repro.evolving.stratified_eval import StratifiedIncrementalEvaluator

    kind = state["kind"]
    labels = np.asarray(state["labels"], dtype=bool)
    base_triples = int(state["base_triples"])
    if base.graph.num_triples != base_triples:
        raise ValueError(
            f"base graph has {base.graph.num_triples} triples but the state "
            f"was captured against {base_triples}"
        )
    kwargs = dict(
        config=EvaluationConfig(**state["config"]),
        cost_model=state["cost_model"],
        second_stage_size=state["second_stage_size"],
        seed=state["seed"],
        surface="position",
        position_labels=labels[:base_triples],
        workers=workers,
        num_shards=num_shards,
        transport=transport,
    )
    if kind == "rs":
        evaluator = ReservoirIncrementalEvaluator(base, **kwargs)
    else:
        evaluator = StratifiedIncrementalEvaluator(
            base, min_units_per_stratum=state["min_units_per_stratum"], **kwargs
        )

    # Replay the delta tail (vocabulary extension first, so ids line up).
    delta = _require_delta(evaluator)
    vocab = delta.base.vocab
    if len(vocab) != int(state["base_vocab_size"]):
        raise ValueError(
            f"base vocabulary has {len(vocab)} entries but the state was "
            f"captured against {state['base_vocab_size']}"
        )
    for token in state["vocab_ext"]:
        vocab.intern(token)
    tail = state["tail"]
    delta.restore_tail(
        tail["subjects"], tail["predicates"], tail["objects"], tail["flags"]
    )

    # Shared evaluator state: labels, random stream, cost account, history.
    evaluator._labels = labels
    evaluator._rng.bit_generator.state = state["rng_state"]
    account = PositionAnnotationAccount(state["cost_model"])
    account._identified = {int(key) for key in state["account"]["identified"]}
    account._annotated = {int(position) for position in state["account"]["annotated"]}
    account._total_seconds = float(state["account"]["total_seconds"])
    evaluator._account = account
    evaluator._discarded_cost_seconds = float(state["discarded_cost_seconds"])
    evaluator.history = list(state["history"])

    if kind == "rs":
        evaluator._reservoir = list(state["reservoir"])
        evaluator._candidates = list(state["candidates"])
        evaluator._tiebreak = int(state["tiebreak"])
        evaluator._replacements_total = int(state["replacements"])
        evaluator._stats = state["stats"].copy()
        evaluator._stats_triples = int(state["stats_triples"])
    else:
        from repro.evolving.stratified_eval import _StratumState

        strata = []
        for entry in state["strata"]:
            segment = entry["segment"]
            if segment is None:
                design = TwoStageWeightedClusterDesign(
                    evaluator.evolving.base,
                    second_stage_size=evaluator.second_stage_size,
                    seed=evaluator._rng,
                )
            else:
                design = SegmentTWCSDesign(
                    segment,
                    second_stage_size=evaluator.second_stage_size,
                    seed=evaluator._rng,
                )
            design._cluster_means = entry["mean"].copy()
            design._num_triples = int(entry["design_triples"])
            strata.append(
                _StratumState(
                    stratum_id=entry["stratum_id"],
                    num_triples=int(entry["num_triples"]),
                    design=design,
                    segment=segment,
                )
            )
        evaluator._strata = strata
    return evaluator
