"""The paper's evolving-KG baseline: re-evaluate every snapshot from scratch.

After each update batch the evaluator runs a fresh static TWCS evaluation on
the full current graph ``G + Δ``, discarding all annotations collected for
earlier snapshots (the annotator session is reset, so previously identified
entities and labelled triples are charged again).  This is the "Baseline" bar
in Figure 8.
"""

from __future__ import annotations

from repro.core.framework import StaticEvaluator
from repro.evolving.base import IncrementalEvaluator, UpdateEvaluation
from repro.kg.updates import UpdateBatch
from repro.labels.oracle import LabelOracle
from repro.sampling.twcs import TwoStageWeightedClusterDesign

__all__ = ["BaselineEvolvingEvaluator"]


class BaselineEvolvingEvaluator(IncrementalEvaluator):
    """Independent static TWCS evaluation of every snapshot."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if self.position_mode:
            raise ValueError(
                "BaselineEvolvingEvaluator re-annotates every snapshot through the "
                "object surface; construct it with surface='object'"
            )

    def _evaluate_snapshot(self, batch_id: str) -> UpdateEvaluation:
        design = TwoStageWeightedClusterDesign(
            self.evolving.current,
            second_stage_size=self.second_stage_size,
            seed=self.seed,
        )
        # The baseline deliberately does not reuse labels or entity
        # identifications from earlier snapshots: bank the cost charged so far
        # and start a fresh annotation session for this snapshot.
        self._discarded_cost_seconds += self.annotator.total_cost_seconds
        evaluator = StaticEvaluator(design, self.annotator, self.config)
        report = evaluator.run(reset=True)
        return self._record(batch_id, report)

    def evaluate_base(self) -> UpdateEvaluation:
        """Run a static evaluation of the base graph."""
        return self._evaluate_snapshot("base")

    def apply_update(self, batch: UpdateBatch, batch_oracle: LabelOracle) -> UpdateEvaluation:
        """Apply the batch, then re-evaluate the whole graph from scratch."""
        self._register_update(batch, batch_oracle)
        return self._evaluate_snapshot(batch.batch_id)
