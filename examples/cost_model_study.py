#!/usr/bin/env python3
"""Reproducing the annotation-cost study (Figures 1 and 4, Table 4).

The paper motivates its whole design with one observation: annotating triples
grouped by entity is much cheaper than annotating scattered triples, because
the expensive part of the task — identifying the subject entity — is paid once
per entity, not once per triple.  This example reproduces that study:

1. Figure 1 — cumulative annotation-time curves for a triple-level task
   (50 triples, 50 distinct entities) vs an entity-level task (50 triples from
   ~11 entities);
2. Figure 4 — fitting the cost function Cost = |E|*c1 + |T|*c2 to observed
   task times and checking the fit quality;
3. Table 4 — the resulting end-to-end cost difference between SRS and TWCS on
   a MOVIE-like KG.

Run with:  python examples/cost_model_study.py
"""

from repro.experiments import figure1_cost_curves, figure4_cost_fit, format_table, table4_movie_cost


def sparkline(values, width: int = 40) -> str:
    """Render a cumulative curve as a coarse text bar (no plotting deps)."""
    if not values:
        return ""
    maximum = max(values)
    scaled = int(round(width * values[-1] / maximum)) if maximum else 0
    return "#" * scaled + f"  ({values[-1] / 60:.1f} min total)"


def main() -> None:
    # --- Figure 1 ----------------------------------------------------------
    fig1 = figure1_cost_curves(seed=3)
    print("Figure 1 — cumulative annotation time for 50 triples:")
    print(f"  triple-level task  (50 entities): {sparkline(fig1.triple_level_seconds)}")
    print(
        f"  entity-level task  ({fig1.entity_level_num_entities} entities): "
        f"{sparkline(fig1.entity_level_seconds)}"
    )
    ratio = fig1.entity_level_seconds[-1] / fig1.triple_level_seconds[-1]
    print(f"  entity-level task takes {ratio:.0%} of the triple-level time\n")

    # --- Figure 4 ----------------------------------------------------------
    fig4 = figure4_cost_fit(seed=3)
    print("Figure 4 — least-squares fit of the cost function:")
    fit = fig4.fit
    print(f"  fitted c1 (entity identification) : {fit.identification_cost:5.1f} s (true 45 s)")
    print(f"  fitted c2 (relationship validation): {fig4.fit.validation_cost:5.1f} s (true 25 s)")
    print(f"  R^2 of the fit                     : {fig4.fit.r_squared:.3f}\n")

    # --- Table 4 -----------------------------------------------------------
    rows = table4_movie_cost(num_trials=5, seed=3, movie_scale=0.01)
    print("Table 4 — MOVIE accuracy evaluation cost (mean over 5 trials):")
    print(
        format_table(
            rows,
            columns=[
                "method",
                "num_entities",
                "num_triples",
                "annotation_hours",
                "accuracy_estimate",
                "moe",
            ],
        )
    )


if __name__ == "__main__":
    main()
