#!/usr/bin/env python3
"""Evaluating your own knowledge graph loaded from a TSV file.

The other examples generate synthetic KGs; this one shows the path a
downstream user of the library would actually take:

1. load a knowledge graph from a ``subject<TAB>predicate<TAB>object`` file
   (here we first write a small demo file so the example is self-contained);
2. run a *pilot* TWCS round against human annotators — simulated below — to
   get rough cluster-accuracy information;
3. pick the optimal second-stage size m from the pilot and run the full
   evaluation to the required margin of error.

Run with:  python examples/custom_kg_from_tsv.py
"""

import tempfile
from pathlib import Path

from repro import CostModel, SimulatedAnnotator, TwoStageWeightedClusterDesign, evaluate_accuracy
from repro.generators import make_nell_like
from repro.kg.io import read_labelled_tsv, write_labelled_tsv
from repro.labels import LabelOracle
from repro.sampling import optimal_second_stage_size


def write_demo_file(path: Path) -> None:
    """Write a small labelled KG to disk (stands in for your exported KG)."""
    data = make_nell_like(seed=21)
    labels = {triple: data.oracle.label(triple) for triple in data.graph}
    write_labelled_tsv(labels, path)


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        kg_path = Path(tmp) / "my_kg.tsv"
        write_demo_file(kg_path)

        # 1. Load the KG (and, because this demo file happens to ship labels,
        #    the ground truth the simulated annotator will consult).
        graph, labels = read_labelled_tsv(kg_path, name="my-kg")
        oracle = LabelOracle(labels)
        print(f"Loaded {graph!r} from {kg_path.name}")

        # 2. Pilot round: a cheap TWCS pass at a loose 10% margin of error.
        pilot_design = TwoStageWeightedClusterDesign(graph, second_stage_size=3, seed=1)
        pilot_annotator = SimulatedAnnotator(oracle, seed=1)
        pilot = evaluate_accuracy(pilot_design, pilot_annotator, moe_target=0.10)
        print(f"Pilot: {pilot.summary()}")

        # 3. Use the pilot's per-cluster picture to choose m, then run the
        #    full evaluation at 5% MoE.  The pilot-derived cluster accuracies
        #    are crude (few triples per cluster), which is exactly the
        #    situation a practitioner is in.
        pilot_labels = pilot_annotator.labelled_triples
        sampled_entities = {triple.subject for triple in pilot_labels}
        sizes, accuracies = [], []
        for entity_id in sampled_entities:
            cluster = graph.cluster(entity_id)
            observed = [pilot_labels[t] for t in cluster if t in pilot_labels]
            sizes.append(cluster.size)
            accuracies.append(sum(observed) / len(observed))
        optimum = optimal_second_stage_size(sizes, accuracies, CostModel(), moe_target=0.05)
        print(f"Pilot-estimated optimal m = {optimum.second_stage_size}")

        design = TwoStageWeightedClusterDesign(
            graph, second_stage_size=optimum.second_stage_size, seed=5
        )
        annotator = SimulatedAnnotator(oracle, seed=5)
        report = evaluate_accuracy(design, annotator, moe_target=0.05)
        interval = report.confidence_interval
        print(f"Final: {report.summary()}")
        print(f"95% confidence interval: [{interval.lower:.1%}, {interval.upper:.1%}]")


if __name__ == "__main__":
    main()
