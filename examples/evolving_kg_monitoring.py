#!/usr/bin/env python3
"""Continuously monitoring the accuracy of an evolving knowledge graph.

A production KG ingests new facts in batches; re-certifying its accuracy from
scratch after every batch is wasteful.  This example follows Section 6/7.3 of
the paper: a MOVIE-like base KG receives a stream of update batches of varying
quality, and three evaluators keep its accuracy estimate within a 5 % margin
of error:

* Baseline — fresh static TWCS evaluation per snapshot,
* RS       — reservoir incremental evaluation (Algorithm 1),
* SS       — stratified incremental evaluation (Algorithm 2).

Run with:  python examples/evolving_kg_monitoring.py
"""

import numpy as np

from repro import (
    BaselineEvolvingEvaluator,
    EvolvingAccuracyMonitor,
    LabelledKG,
    RandomErrorModel,
    ReservoirIncrementalEvaluator,
    StratifiedIncrementalEvaluator,
    UpdateWorkloadGenerator,
    make_movie_like,
)

NUM_BATCHES = 6
BATCH_FRACTION = 0.15
BATCH_ACCURACIES = (0.95, 0.9, 0.6, 0.85, 0.4, 0.9)


def build_base(seed: int) -> LabelledKG:
    """A 50% subset of a MOVIE-like KG, relabelled at 90% accuracy with REM."""
    movie = make_movie_like(seed=seed, scale=0.01)
    rng = np.random.default_rng(seed)
    base_graph = movie.graph.random_triple_subset(0.5, rng, name="MOVIE-base")
    oracle = RandomErrorModel.with_accuracy(0.9, seed=seed).generate(base_graph)
    return LabelledKG(base_graph, oracle)


def main() -> None:
    base = build_base(seed=5)
    print(f"Base KG: {base.graph!r}, true accuracy {base.true_accuracy:.1%}\n")
    batch_size = int(BATCH_FRACTION * base.graph.num_triples)

    evaluators = {
        "Baseline": BaselineEvolvingEvaluator(base, seed=1),
        "RS (reservoir)": ReservoirIncrementalEvaluator(base, seed=1),
        "SS (stratified)": StratifiedIncrementalEvaluator(base, seed=1),
    }
    for name, evaluator in evaluators.items():
        monitor = EvolvingAccuracyMonitor(evaluator)
        monitor.evaluate_base()
        # Every evaluator sees an identically generated update stream.
        workload = UpdateWorkloadGenerator(base, seed=99)
        for accuracy in BATCH_ACCURACIES[:NUM_BATCHES]:
            batch, batch_oracle = workload.generate_batch(batch_size, accuracy)
            monitor.apply_update(batch, batch_oracle)

        print(f"=== {name} ===")
        print("batch  estimate  truth   MoE    batch-cost(h)  total-cost(h)")
        for record in monitor.records:
            print(
                f"{record.batch_index:>5}  {record.estimated_accuracy:7.1%}  "
                f"{record.true_accuracy:6.1%}  {record.margin_of_error:5.3f}  "
                f"{record.incremental_cost_hours:12.2f}  {record.cumulative_cost_hours:12.2f}"
            )
        print()

    print(
        "Expected shape: all three track the falling-then-recovering true accuracy;\n"
        "SS spends the least annotation time, the Baseline by far the most."
    )


if __name__ == "__main__":
    main()
