#!/usr/bin/env python3
"""Continuously monitoring the accuracy of an evolving knowledge graph.

A production KG ingests new facts in batches; re-certifying its accuracy from
scratch after every batch is wasteful.  This example follows Section 6/7.3 of
the paper: a MOVIE-like base KG receives a stream of update batches of varying
quality, and three evaluators keep its accuracy estimate within a 5 % margin
of error:

* Baseline — fresh static TWCS evaluation per snapshot,
* RS       — reservoir incremental evaluation (Algorithm 1),
* SS       — stratified incremental evaluation (Algorithm 2).

The second part shows the production-scale variant of the same workflow: the
base KG moves to the columnar backend and is persisted as a format-v2
snapshot (columns + label array), and the evaluator runs on the *position
surface* — update batches become appended CSR segments over a zero-copy
DeltaStore view, no Triple objects are materialised, and re-running the
script reopens the snapshot instead of rebuilding the base.  Position-mode
estimates are bit-identical across storage backends under a fixed seed.

Run with:  python examples/evolving_kg_monitoring.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    BaselineEvolvingEvaluator,
    EvolvingAccuracyMonitor,
    LabelledKG,
    RandomErrorModel,
    ReservoirIncrementalEvaluator,
    StratifiedIncrementalEvaluator,
    UpdateWorkloadGenerator,
    make_movie_like,
)
from repro.storage import SnapshotStore

NUM_BATCHES = 6
BATCH_FRACTION = 0.15
BATCH_ACCURACIES = (0.95, 0.9, 0.6, 0.85, 0.4, 0.9)


def build_base(seed: int) -> LabelledKG:
    """A 50% subset of a MOVIE-like KG, relabelled at 90% accuracy with REM."""
    movie = make_movie_like(seed=seed, scale=0.01)
    rng = np.random.default_rng(seed)
    base_graph = movie.graph.random_triple_subset(0.5, rng, name="MOVIE-base")
    oracle = RandomErrorModel.with_accuracy(0.9, seed=seed).generate(base_graph)
    return LabelledKG(base_graph, oracle)


def main() -> None:
    base = build_base(seed=5)
    print(f"Base KG: {base.graph!r}, true accuracy {base.true_accuracy:.1%}\n")
    batch_size = int(BATCH_FRACTION * base.graph.num_triples)

    evaluators = {
        "Baseline": BaselineEvolvingEvaluator(base, seed=1),
        "RS (reservoir)": ReservoirIncrementalEvaluator(base, seed=1),
        "SS (stratified)": StratifiedIncrementalEvaluator(base, seed=1),
    }
    for name, evaluator in evaluators.items():
        monitor = EvolvingAccuracyMonitor(evaluator)
        monitor.evaluate_base()
        # Every evaluator sees an identically generated update stream.
        workload = UpdateWorkloadGenerator(base, seed=99)
        for accuracy in BATCH_ACCURACIES[:NUM_BATCHES]:
            batch, batch_oracle = workload.generate_batch(batch_size, accuracy)
            monitor.apply_update(batch, batch_oracle)

        print(f"=== {name} ===")
        print("batch  estimate  truth   MoE    batch-cost(h)  total-cost(h)")
        for record in monitor.records:
            print(
                f"{record.batch_index:>5}  {record.estimated_accuracy:7.1%}  "
                f"{record.true_accuracy:6.1%}  {record.margin_of_error:5.3f}  "
                f"{record.incremental_cost_hours:12.2f}  {record.cumulative_cost_hours:12.2f}"
            )
        print()

    print(
        "Expected shape: all three track the falling-then-recovering true accuracy;\n"
        "SS spends the least annotation time, the Baseline by far the most."
    )


def columnar_with_snapshot_resume(snapshot_dir: Path) -> None:
    """The same monitoring loop on the columnar backend, resumable via snapshot.

    First call: builds the base KG, converts it to columnar storage and
    persists graph + labels (snapshot format v2).  Subsequent calls reopen
    the snapshot in milliseconds and replay the identical trajectory —
    nothing is re-generated or re-annotated.
    """
    store = SnapshotStore(snapshot_dir)
    if store.exists():
        graph = store.load_graph(mmap=True)
        label_array = store.load_labels(mmap=True)
        print(f"reopened {graph!r} from {snapshot_dir} (labels persisted alongside)")
        # The position surface reads ground truth from the label array, so a
        # Triple-keyed oracle is not needed on the resume path.
        from repro import LabelOracle

        base = LabelledKG(graph, LabelOracle({}, strict=False))
    else:
        data = build_base(seed=5)
        graph = data.graph.to_columnar()
        label_array = data.oracle.as_position_array(graph)
        store.save(graph.backend, name=graph.name, labels=label_array)
        base = LabelledKG(graph, data.oracle)
        print(f"built {graph!r} and saved graph + labels to {snapshot_dir}")

    evaluator = StratifiedIncrementalEvaluator(
        base, seed=1, surface="position", position_labels=np.asarray(label_array, dtype=bool)
    )
    monitor = EvolvingAccuracyMonitor(evaluator)
    monitor.evaluate_base()
    workload = UpdateWorkloadGenerator(base, seed=99)
    batch_size = int(BATCH_FRACTION * base.graph.num_triples)
    for accuracy in BATCH_ACCURACIES[:3]:
        batch, batch_oracle = workload.generate_batch(batch_size, accuracy)
        monitor.apply_update(batch, batch_oracle)

    print("=== SS on columnar + DeltaStore (position surface) ===")
    print("batch  estimate  truth   MoE    total-cost(h)")
    for record in monitor.records:
        print(
            f"{record.batch_index:>5}  {record.estimated_accuracy:7.1%}  "
            f"{record.true_accuracy:6.1%}  {record.margin_of_error:5.3f}  "
            f"{record.cumulative_cost_hours:12.2f}"
        )
    print()


if __name__ == "__main__":
    main()
    with tempfile.TemporaryDirectory() as tmp:
        snapshot_dir = Path(tmp) / "movie-base"
        columnar_with_snapshot_resume(snapshot_dir)  # builds + saves
        columnar_with_snapshot_resume(snapshot_dir)  # reopens + replays
