#!/usr/bin/env python3
"""Per-predicate quality report with a pilot-chosen design and a noisy crew.

This example combines the library's extensions into the workflow a KG team
would actually run before a release:

1. **Pilot** — spend a small annotation budget to learn the cluster-accuracy
   profile and pick the TWCS second-stage size m (Eq. 12);
2. **Crew with quality control** — use three imperfect annotators with
   majority voting per evaluation task instead of a single perfect one;
3. **Overall certification** — estimate the KG's overall accuracy to a 5 %
   margin of error;
4. **Per-predicate drill-down** — the paper's future-work scenario: find which
   predicates drag the overall accuracy down.

Run with:  python examples/predicate_quality_report.py
"""

from repro import (
    CostModel,
    EvaluationConfig,
    GranularEvaluator,
    NoisyAnnotator,
    SimulatedAnnotator,
    StaticEvaluator,
    TwoStageWeightedClusterDesign,
    make_movie_like,
    recommend_design,
    run_pilot,
)
from repro.cost import AnnotationTaskPool


def main() -> None:
    data = make_movie_like(seed=13, scale=0.01)
    print(f"KG under audit: {data.graph!r} (hidden true accuracy {data.true_accuracy:.1%})\n")

    # --- 1. Pilot ----------------------------------------------------------
    pilot_annotator = SimulatedAnnotator(data.oracle, seed=1)
    pilot = run_pilot(data.graph, pilot_annotator, num_clusters=30, second_stage_size=3, seed=1)
    recommendation = recommend_design(pilot, CostModel(), moe_target=0.05)
    print(
        f"Pilot: {pilot.num_clusters} clusters / {pilot.num_triples_annotated} triples, "
        f"{pilot.cost_hours:.2f} h; rough accuracy {pilot.accuracy_estimate:.1%}, "
        f"between-cluster std {pilot.between_cluster_std:.2f}"
    )
    print(
        f"Recommended second-stage size m = {recommendation.second_stage_size} "
        f"(predicted {recommendation.num_cluster_draws} cluster draws, "
        f"{recommendation.expected_cost_hours:.2f} h)\n"
    )

    # --- 2. Crew with majority voting ---------------------------------------
    crew = AnnotationTaskPool(
        [NoisyAnnotator(data.oracle, label_error_rate=0.05, seed=seed) for seed in (10, 11, 12)],
        annotations_per_task=3,
    )

    # --- 3. Overall certification -------------------------------------------
    design = TwoStageWeightedClusterDesign(
        data.graph, second_stage_size=recommendation.second_stage_size, seed=2
    )
    report = StaticEvaluator(design, crew, EvaluationConfig(moe_target=0.05)).run()
    interval = report.confidence_interval
    print("Overall certification (3-way majority vote per task):")
    print(f"  estimated accuracy : {report.accuracy:.1%}")
    print(f"  95% interval       : [{interval.lower:.1%}, {interval.upper:.1%}]")
    print(f"  crew annotation    : {report.annotation_cost_hours:.2f} person-hours\n")

    # --- 4. Per-predicate drill-down -----------------------------------------
    drill_annotator = SimulatedAnnotator(data.oracle, seed=3)
    granular = GranularEvaluator(
        data.graph,
        drill_annotator,
        EvaluationConfig(moe_target=0.08),
        second_stage_size=recommendation.second_stage_size,
        seed=3,
    )
    reports = granular.evaluate_by_predicate()
    worst = sorted(reports.values(), key=lambda r: r.accuracy)[:5]
    print("Per-predicate drill-down (5 least accurate predicates):")
    print(f"{'predicate':<16} {'triples':>8} {'accuracy':>9} {'±MoE':>6}  mode")
    for group in worst:
        mode = "census" if group.exhaustive else "sampled"
        print(
            f"{group.group:<16} {group.num_triples_in_group:>8} "
            f"{group.accuracy:>8.1%} {group.margin_of_error:>6.3f}  {mode}"
        )
    combined = GranularEvaluator.combine(reports)
    print(
        f"\nStratified recombination of the per-predicate estimates: "
        f"{combined.value:.1%} (consistent with the overall certification above)"
    )
    print(f"Drill-down annotation cost: {drill_annotator.total_cost_hours:.2f} hours")


if __name__ == "__main__":
    main()
