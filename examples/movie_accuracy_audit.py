#!/usr/bin/env python3
"""Auditing a large entertainment KG: design choices that cut annotation cost.

This example mirrors the MOVIE audit of Section 7 of the paper on a scaled
MOVIE-like knowledge graph (IMDb ⋈ WikiData shape: large clusters, ~90 %
accurate) and shows the three levers the paper introduces:

* grouping triples by entity (TWCS vs SRS),
* choosing the second-stage size m from pilot information (Eq. 12),
* stratifying clusters by size before sampling (Section 5.3).

Run with:  python examples/movie_accuracy_audit.py
"""

from repro import (
    CostModel,
    SimpleRandomDesign,
    SimulatedAnnotator,
    StratifiedTWCSDesign,
    TwoStageWeightedClusterDesign,
    evaluate_accuracy,
    make_movie_like,
    optimal_second_stage_size,
    stratify_by_size,
)


def run(design, data, seed: int):
    annotator = SimulatedAnnotator(data.oracle, seed=seed)
    return evaluate_accuracy(design, annotator, moe_target=0.05, confidence_level=0.95)


def main() -> None:
    data = make_movie_like(seed=11, scale=0.02)
    print(f"KG under audit: {data.graph!r}")
    print(f"True (hidden) accuracy: {data.true_accuracy:.1%}\n")

    # 1. The naive audit: simple random sampling of triples.
    srs_report = run(SimpleRandomDesign(data.graph, seed=4), data, seed=4)
    print(f"SRS:                 {srs_report.summary()}")

    # 2. Entity-grouped audit with a default second-stage cap.
    twcs_report = run(
        TwoStageWeightedClusterDesign(data.graph, second_stage_size=5, seed=4), data, seed=4
    )
    print(f"TWCS (m=5):          {twcs_report.summary()}")

    # 3. Pick m from pilot knowledge of the cluster-size/accuracy profile.
    #    In practice the pilot comes from a small preliminary sample; here we
    #    use the oracle directly to show the mechanics of Eq. (12).
    sizes = [cluster.size for cluster in data.graph.clusters()]
    accuracies = [
        data.oracle.cluster_accuracy(data.graph, entity_id)
        for entity_id in data.graph.entity_ids
    ]
    optimum = optimal_second_stage_size(sizes, accuracies, CostModel(), moe_target=0.05)
    print(
        f"\nOptimal second-stage size m* = {optimum.second_stage_size} "
        f"(expected cost {optimum.expected_cost_hours:.2f} h for "
        f"{optimum.num_cluster_draws} cluster draws)"
    )
    tuned_report = run(
        TwoStageWeightedClusterDesign(
            data.graph, second_stage_size=optimum.second_stage_size, seed=4
        ),
        data,
        seed=4,
    )
    print(f"TWCS (m=m*):         {tuned_report.summary()}")

    # 4. Add size stratification (cumulative sqrt-F boundaries, 4 strata).
    strata = stratify_by_size(data.graph, num_strata=4)
    stratified_report = run(
        StratifiedTWCSDesign(data.graph, strata, optimum.second_stage_size, seed=4), data, seed=4
    )
    print(f"TWCS + size strata:  {stratified_report.summary()}")

    best = min(twcs_report, tuned_report, stratified_report, key=lambda r: r.annotation_cost_hours)
    saving = 1.0 - best.annotation_cost_hours / srs_report.annotation_cost_hours
    print(f"\nBest cluster-based design saves {saving:.0%} of annotation time vs SRS.")


if __name__ == "__main__":
    main()
