#!/usr/bin/env python3
"""Quickstart: estimate the accuracy of a knowledge graph with TWCS.

This walks through the paper's core workflow on a NELL-like knowledge graph:

1. build (or load) a knowledge graph and its ground-truth labels;
2. choose a sampling design — here two-stage weighted cluster sampling (TWCS),
   the paper's best design — and an annotator;
3. run the iterative evaluation loop until the margin of error drops below the
   requested threshold;
4. inspect the estimate, its confidence interval and the annotation cost, and
   compare against plain simple random sampling.

Run with:  python examples/quickstart.py
"""

from repro import (
    SimpleRandomDesign,
    SimulatedAnnotator,
    TwoStageWeightedClusterDesign,
    evaluate_accuracy,
    make_nell_like,
)


def main() -> None:
    # A synthetic stand-in for the NELL evaluation sample used in the paper:
    # 817 entities, ~1 900 triples, ~91 % of which are correct.
    data = make_nell_like(seed=42)
    print(f"KG: {data.graph!r}")
    print(f"True (hidden) accuracy: {data.true_accuracy:.1%}\n")

    # --- TWCS: the paper's best design -----------------------------------
    twcs = TwoStageWeightedClusterDesign(data.graph, second_stage_size=5, seed=7)
    annotator = SimulatedAnnotator(data.oracle, seed=7)
    report = evaluate_accuracy(twcs, annotator, moe_target=0.05, confidence_level=0.95)
    interval = report.confidence_interval
    print("Two-stage weighted cluster sampling (TWCS):")
    print(f"  estimated accuracy : {report.accuracy:.1%}")
    print(f"  95% interval       : [{interval.lower:.1%}, {interval.upper:.1%}]")
    print(f"  clusters sampled   : {report.num_units}")
    print(f"  triples annotated  : {report.num_triples_annotated}")
    print(f"  entities identified: {report.num_entities_identified}")
    print(f"  annotation cost    : {report.annotation_cost_hours:.2f} hours\n")

    # --- SRS baseline ------------------------------------------------------
    srs = SimpleRandomDesign(data.graph, seed=7)
    annotator = SimulatedAnnotator(data.oracle, seed=7)
    srs_report = evaluate_accuracy(srs, annotator, moe_target=0.05, confidence_level=0.95)
    print("Simple random sampling (SRS) baseline:")
    print(f"  estimated accuracy : {srs_report.accuracy:.1%}")
    print(f"  triples annotated  : {srs_report.num_triples_annotated}")
    print(f"  annotation cost    : {srs_report.annotation_cost_hours:.2f} hours\n")

    saving = 1.0 - report.annotation_cost_hours / srs_report.annotation_cost_hours
    print(f"TWCS saves {saving:.0%} of the annotation time at the same statistical guarantee.")


if __name__ == "__main__":
    main()
