"""Unit tests for synthetic KG generation, dataset stand-ins and update workloads."""

from __future__ import annotations

import pytest

from repro.generators.datasets import (
    generate_calibrated_labels,
    make_movie_full_like,
    make_movie_like,
    make_movie_syn,
    make_nell_like,
    make_yago_like,
)
from repro.generators.synthetic_kg import SyntheticKGConfig, generate_kg, sample_cluster_sizes
from repro.generators.workload import UpdateWorkloadGenerator
from repro.kg.statistics import size_accuracy_correlation


class TestSyntheticKGConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_entities": 0},
            {"num_entities": 10, "mean_cluster_size": 0.5},
            {"num_entities": 10, "size_skew": -1.0},
            {"num_entities": 10, "max_cluster_size": 0},
            {"num_entities": 10, "entity_object_fraction": 1.5},
        ],
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ValueError):
            SyntheticKGConfig(**kwargs)


class TestClusterSizeSampling:
    def test_sizes_within_bounds(self, rng):
        sizes = sample_cluster_sizes(1000, 5.0, 1.0, 50, rng)
        assert sizes.min() >= 1
        assert sizes.max() <= 50
        assert sizes.shape == (1000,)

    def test_mean_close_to_target(self, rng):
        sizes = sample_cluster_sizes(5000, 9.0, 1.0, 500, rng)
        assert sizes.mean() == pytest.approx(9.0, rel=0.15)

    def test_no_skew_gives_constant_sizes(self, rng):
        sizes = sample_cluster_sizes(100, 3.0, 0.0, 50, rng)
        assert set(sizes.tolist()) == {3}

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            sample_cluster_sizes(0, 3.0, 1.0, 50, rng)
        with pytest.raises(ValueError):
            sample_cluster_sizes(10, 0.5, 1.0, 50, rng)


class TestGenerateKG:
    def test_entity_count_matches_config(self):
        config = SyntheticKGConfig(num_entities=200, mean_cluster_size=3.0, name="test")
        graph = generate_kg(config, seed=0)
        assert graph.num_entities == 200
        assert graph.name == "test"
        assert graph.num_triples >= 200

    def test_deterministic_under_seed(self):
        config = SyntheticKGConfig(num_entities=50, mean_cluster_size=2.0)
        first = generate_kg(config, seed=3)
        second = generate_kg(config, seed=3)
        assert list(first) == list(second)

    def test_entity_object_fraction_zero_and_one(self):
        all_data = generate_kg(
            SyntheticKGConfig(num_entities=50, entity_object_fraction=0.0), seed=0
        )
        assert all(not t.is_entity_object for t in all_data)
        all_entity = generate_kg(
            SyntheticKGConfig(num_entities=50, entity_object_fraction=1.0), seed=0
        )
        assert all(t.is_entity_object for t in all_entity)


class TestCalibratedLabels:
    def test_overall_accuracy_close_to_target(self, movie_small):
        oracle = generate_calibrated_labels(movie_small.graph, 0.8, seed=0)
        assert oracle.true_accuracy(movie_small.graph) == pytest.approx(0.8, abs=0.03)

    def test_labels_cover_all_triples(self, movie_small):
        oracle = generate_calibrated_labels(movie_small.graph, 0.7, seed=1)
        assert len(oracle) == movie_small.graph.num_triples

    def test_size_correlation_present_when_requested(self, movie_small):
        oracle = generate_calibrated_labels(
            movie_small.graph, 0.75, size_correlation=0.4, noise_sigma=0.02, seed=2
        )
        assert size_accuracy_correlation(movie_small.graph, oracle.as_dict()) > 0.1

    def test_invalid_target(self, movie_small):
        with pytest.raises(ValueError):
            generate_calibrated_labels(movie_small.graph, 1.2)


class TestDatasetStandIns:
    def test_nell_characteristics(self):
        data = make_nell_like(seed=0)
        assert data.graph.num_entities == 817
        assert 1_300 <= data.graph.num_triples <= 2_400
        assert data.true_accuracy == pytest.approx(0.91, abs=0.03)

    def test_yago_characteristics(self):
        data = make_yago_like(seed=0)
        assert data.graph.num_entities == 822
        assert 1_000 <= data.graph.num_triples <= 1_900
        assert data.true_accuracy == pytest.approx(0.99, abs=0.015)

    def test_movie_characteristics(self):
        data = make_movie_like(seed=0, scale=0.01)
        assert data.graph.num_entities == pytest.approx(2888, abs=2)
        assert data.graph.average_cluster_size == pytest.approx(9.2, rel=0.2)
        assert data.true_accuracy == pytest.approx(0.90, abs=0.03)

    def test_movie_scale_controls_size(self):
        small = make_movie_like(seed=0, scale=0.005)
        large = make_movie_like(seed=0, scale=0.01)
        assert large.graph.num_entities > small.graph.num_entities
        with pytest.raises(ValueError):
            make_movie_like(scale=0.0)

    def test_movie_syn_uses_bmm_labels(self):
        data = make_movie_syn(c=0.01, sigma=0.1, seed=0, scale=0.005)
        assert 0.4 <= data.true_accuracy <= 0.8
        strong = make_movie_syn(c=0.5, sigma=0.05, seed=0, scale=0.005)
        assert strong.true_accuracy > data.true_accuracy

    def test_movie_full_like_size_and_accuracy(self):
        data = make_movie_full_like(num_triples=20_000, accuracy=0.7, seed=0)
        assert data.graph.num_triples == pytest.approx(20_000, rel=0.2)
        assert data.true_accuracy == pytest.approx(0.7, abs=0.02)
        with pytest.raises(ValueError):
            make_movie_full_like(num_triples=0)

    def test_datasets_reproducible_under_seed(self):
        assert make_nell_like(seed=7).true_accuracy == make_nell_like(seed=7).true_accuracy


class TestUpdateWorkloadGenerator:
    def test_batch_size_and_labels(self, movie_small):
        generator = UpdateWorkloadGenerator(movie_small, seed=0)
        batch, oracle = generator.generate_batch(500, accuracy=0.8)
        assert batch.size == pytest.approx(500, abs=5)
        assert all(t in oracle for t in batch)
        realised = sum(oracle.label(t) for t in batch) / batch.size
        assert realised == pytest.approx(0.8, abs=0.06)

    def test_new_entity_fraction_respected(self, movie_small):
        generator = UpdateWorkloadGenerator(movie_small, new_entity_fraction=1.0, seed=1)
        batch, _ = generator.generate_batch(300, accuracy=0.9)
        existing = set(movie_small.graph.entity_ids)
        assert all(t.subject not in existing for t in batch)

        generator = UpdateWorkloadGenerator(movie_small, new_entity_fraction=0.0, seed=1)
        batch, _ = generator.generate_batch(300, accuracy=0.9)
        assert all(t.subject in existing for t in batch)

    def test_batch_ids_unique_and_sequential(self, movie_small):
        generator = UpdateWorkloadGenerator(movie_small, seed=2)
        ids = [generator.generate_batch(50, 0.9)[0].batch_id for _ in range(3)]
        assert len(set(ids)) == 3

    def test_generate_sequence(self, movie_small):
        generator = UpdateWorkloadGenerator(movie_small, seed=3)
        batches = list(generator.generate_sequence(4, 100, 0.7))
        assert len(batches) == 4
        assert all(batch.size == pytest.approx(100, abs=3) for batch, _ in batches)

    def test_validation(self, movie_small):
        generator = UpdateWorkloadGenerator(movie_small, seed=0)
        with pytest.raises(ValueError):
            generator.generate_batch(0, 0.9)
        with pytest.raises(ValueError):
            generator.generate_batch(10, 1.5)
        with pytest.raises(ValueError):
            UpdateWorkloadGenerator(movie_small, new_entity_fraction=1.5)

    def test_split_base_keeps_labels_valid(self, movie_small):
        base = UpdateWorkloadGenerator.split_base(movie_small, 0.5, seed=0)
        assert base.graph.num_triples == pytest.approx(
            0.5 * movie_small.graph.num_triples, rel=0.05
        )
        # Every triple of the base subset is still covered by the oracle.
        assert all(t in base.oracle for t in base.graph)
