"""Property-based tests (hypothesis) for the core data structures and estimators.

These tests check invariants that must hold for *any* knowledge graph, label
assignment or parameter setting — not just the synthetic datasets used
elsewhere in the suite:

* graph bookkeeping (cluster index vs. triple store) is always consistent;
* every estimator's census estimate equals the true population accuracy;
* Eq. (10) is non-negative, decreasing in m, and equals the pure
  between-cluster variance for large m;
* the cost model is additive and monotone;
* allocation routines conserve the total sample size;
* reservoir sampling never exceeds its capacity and keeps keys in (0, 1].
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost.model import CostModel
from repro.kg.graph import KnowledgeGraph
from repro.kg.triple import Triple
from repro.labels.oracle import LabelOracle
from repro.sampling.rcs import RandomClusterDesign
from repro.sampling.reservoir import WeightedReservoir
from repro.sampling.srs import SimpleRandomDesign
from repro.sampling.twcs import TwoStageWeightedClusterDesign
from repro.sampling.variance import twcs_v_of_m
from repro.sampling.wcs import WeightedClusterDesign
from repro.stats.allocation import (
    cumulative_sqrt_frequency_boundaries,
    neyman_allocation,
    proportional_allocation,
)
from repro.stats.ci import wilson_interval
from repro.stats.running import RunningMean

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

cluster_spec = st.lists(
    st.tuples(st.integers(min_value=1, max_value=12), st.floats(min_value=0.0, max_value=1.0)),
    min_size=1,
    max_size=25,
)


def build_kg(spec: list[tuple[int, float]]) -> tuple[KnowledgeGraph, LabelOracle]:
    """Build a KG from (cluster_size, accuracy) pairs with deterministic labels."""
    graph = KnowledgeGraph(name="prop")
    labels: dict[Triple, bool] = {}
    for entity_index, (size, accuracy) in enumerate(spec):
        num_correct = int(round(size * accuracy))
        for triple_index in range(size):
            triple = Triple(f"e{entity_index}", "p", f"o{entity_index}_{triple_index}")
            graph.add(triple)
            labels[triple] = triple_index < num_correct
    return graph, LabelOracle(labels)


def census(design, graph, oracle, draws):
    for unit in design.draw(draws):
        design.update(unit, {t: oracle.label(t) for t in unit.triples})
    return design.estimate()


# ---------------------------------------------------------------------------
# Knowledge graph invariants
# ---------------------------------------------------------------------------


class TestGraphInvariants:
    @given(cluster_spec)
    @settings(max_examples=60, deadline=None)
    def test_cluster_index_consistent_with_triples(self, spec):
        graph, _ = build_kg(spec)
        assert graph.num_triples == sum(graph.cluster_sizes().values())
        assert graph.num_entities == len(graph.cluster_sizes())
        for cluster in graph.clusters():
            assert cluster.size == graph.cluster_size(cluster.entity_id)
            assert all(t.subject == cluster.entity_id for t in cluster)

    @given(cluster_spec, st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_subset_and_sampling_preserve_membership(self, spec, seed):
        graph, _ = build_kg(spec)
        rng = np.random.default_rng(seed)
        count = rng.integers(1, graph.num_triples + 1)
        sample = graph.sample_triples(int(count), rng)
        assert len(set(sample)) == len(sample)
        assert all(t in graph for t in sample)


# ---------------------------------------------------------------------------
# Estimator invariants
# ---------------------------------------------------------------------------


class TestEstimatorInvariants:
    @given(cluster_spec, st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_census_estimates_equal_truth_for_srs_and_rcs(self, spec, seed):
        graph, oracle = build_kg(spec)
        truth = oracle.true_accuracy(graph)
        srs = census(SimpleRandomDesign(graph, seed=seed), graph, oracle, graph.num_triples)
        np.testing.assert_allclose(srs.value, truth, atol=1e-12)
        rcs = census(RandomClusterDesign(graph, seed=seed), graph, oracle, graph.num_entities)
        np.testing.assert_allclose(rcs.value, truth, atol=1e-12)

    @given(cluster_spec, st.integers(min_value=0, max_value=2**31 - 1), st.integers(1, 15))
    @settings(max_examples=40, deadline=None)
    def test_cluster_estimators_stay_in_unit_interval(self, spec, seed, m):
        graph, oracle = build_kg(spec)
        wcs = census(WeightedClusterDesign(graph, seed=seed), graph, oracle, 15)
        twcs = census(
            TwoStageWeightedClusterDesign(graph, second_stage_size=m, seed=seed),
            graph,
            oracle,
            15,
        )
        for estimate in (wcs, twcs):
            assert 0.0 <= estimate.value <= 1.0
            assert estimate.num_units == 15
            assert estimate.std_error >= 0.0

    @given(cluster_spec, st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_twcs_with_huge_m_equals_wcs_value_distributionally(self, spec, seed):
        """When m exceeds every cluster size the two designs annotate the same
        triples per sampled cluster, so their estimates agree for equal seeds."""
        graph, oracle = build_kg(spec)
        wcs = WeightedClusterDesign(graph, seed=seed)
        twcs = TwoStageWeightedClusterDesign(graph, second_stage_size=1000, seed=seed)
        wcs_units = wcs.draw(10)
        twcs_units = twcs.draw(10)
        wcs_values = sorted(
            sum(oracle.label(t) for t in u.triples) / u.num_triples for u in wcs_units
        )
        twcs_values = sorted(
            sum(oracle.label(t) for t in u.triples) / u.num_triples for u in twcs_units
        )
        # Same sampling probabilities and full-cluster annotation: the multiset
        # of cluster accuracies drawn must be identically distributed; for the
        # same seed the first-stage draws are identical, so values match.
        np.testing.assert_allclose(wcs_values, twcs_values, atol=1e-12)


# ---------------------------------------------------------------------------
# Theoretical variance (Eq. 10)
# ---------------------------------------------------------------------------


class TestVarianceProperties:
    @given(cluster_spec, st.integers(min_value=1, max_value=20))
    @settings(max_examples=80, deadline=None)
    def test_v_of_m_non_negative_and_bounded(self, spec, m):
        sizes = [size for size, _ in spec]
        accuracies = [acc for _, acc in spec]
        v = twcs_v_of_m(sizes, accuracies, m)
        assert v >= 0.0
        # A [0,1]-valued estimator's single-draw variance cannot exceed 1.25
        # (between-cluster <= 0.25 ... actually <= 1; keep a loose bound).
        assert v <= 1.0 + 0.25 / m + 1e-9

    @given(cluster_spec)
    @settings(max_examples=60, deadline=None)
    def test_v_of_m_monotone_non_increasing_in_m(self, spec):
        sizes = [size for size, _ in spec]
        accuracies = [acc for _, acc in spec]
        values = [twcs_v_of_m(sizes, accuracies, m) for m in range(1, 15)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    @given(cluster_spec)
    @settings(max_examples=60, deadline=None)
    def test_v_of_m_limits(self, spec):
        sizes = [size for size, _ in spec]
        accuracies = [acc for _, acc in spec]
        total = sum(sizes)
        mu = sum(s * a for s, a in zip(sizes, accuracies)) / total
        between = sum(s * (a - mu) ** 2 for s, a in zip(sizes, accuracies)) / total
        v_large = twcs_v_of_m(sizes, accuracies, max(sizes))
        assert v_large >= between - 1e-12
        v_huge = twcs_v_of_m(sizes, accuracies, max(sizes) + 100)
        np.testing.assert_allclose(v_huge, between, atol=1e-12)


# ---------------------------------------------------------------------------
# Cost model, allocation, CI, running mean, reservoir
# ---------------------------------------------------------------------------


class TestCostModelProperties:
    @given(
        st.integers(0, 10_000),
        st.integers(0, 10_000),
        st.integers(0, 10_000),
        st.integers(0, 10_000),
    )
    @settings(max_examples=100, deadline=None)
    def test_cost_additive_and_monotone(self, e1, t1, e2, t2):
        model = CostModel()
        combined = model.cost_seconds(e1 + e2, t1 + t2)
        assert combined == model.cost_seconds(e1, t1) + model.cost_seconds(e2, t2)
        assert model.cost_seconds(e1 + 1, t1) >= model.cost_seconds(e1, t1)
        assert model.cost_seconds(e1, t1 + 1) >= model.cost_seconds(e1, t1)


class TestAllocationProperties:
    @given(
        st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=10),
        st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=100, deadline=None)
    def test_proportional_allocation_conserves_total(self, weights, total):
        allocation = proportional_allocation(weights, total)
        assert sum(allocation) == total
        assert all(a >= 0 for a in allocation)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.01, max_value=10.0),
                st.floats(min_value=0.0, max_value=0.5),
            ),
            min_size=1,
            max_size=8,
        ),
        st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=100, deadline=None)
    def test_neyman_allocation_conserves_total(self, strata, total):
        weights = [w for w, _ in strata]
        stds = [s for _, s in strata]
        allocation = neyman_allocation(weights, stds, total)
        assert sum(allocation) == total

    @given(
        st.lists(st.integers(min_value=1, max_value=500), min_size=1, max_size=300),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=100, deadline=None)
    def test_cum_sqrt_f_boundaries_sorted_and_bounded(self, values, num_strata):
        boundaries = cumulative_sqrt_frequency_boundaries(values, num_strata)
        assert len(boundaries) <= num_strata - 1
        assert boundaries == sorted(boundaries)
        assert len(set(boundaries)) == len(boundaries)


class TestStatsProperties:
    @given(
        st.integers(min_value=1, max_value=10_000).flatmap(
            lambda n: st.tuples(st.integers(min_value=0, max_value=n), st.just(n))
        ),
        st.sampled_from([0.9, 0.95, 0.99]),
    )
    @settings(max_examples=100, deadline=None)
    def test_wilson_interval_contains_point_estimate(self, counts, confidence):
        successes, trials = counts
        interval = wilson_interval(successes, trials, confidence)
        assert 0.0 <= interval.lower <= interval.estimate <= interval.upper <= 1.0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=300))
    @settings(max_examples=100, deadline=None)
    def test_running_mean_matches_numpy(self, values):
        running = RunningMean()
        running.add_all(values)
        np.testing.assert_allclose(running.mean, np.mean(values), rtol=1e-9, atol=1e-6)
        np.testing.assert_allclose(
            running.sample_variance, np.var(values, ddof=1), rtol=1e-7, atol=1e-5
        )


class TestReservoirProperties:
    @given(
        st.integers(min_value=1, max_value=20),
        st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=0, max_size=100),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=100, deadline=None)
    def test_reservoir_size_and_keys(self, capacity, weights, seed):
        reservoir = WeightedReservoir(capacity=capacity, seed=seed)
        for index, weight in enumerate(weights):
            reservoir.offer(f"item{index}", weight)
        assert reservoir.size == min(capacity, len(weights))
        assert reservoir.num_offers == len(weights)
        assert all(0.0 < item.key <= 1.0 for item in reservoir.items)
        item_ids = [item.item_id for item in reservoir.items]
        assert len(set(item_ids)) == len(item_ids)
        if reservoir.size:
            assert math.isfinite(reservoir.min_key)
