"""Unit tests for the iterative evaluation framework (config, report, evaluator)."""

from __future__ import annotations

import math

import pytest

from repro.core.config import EvaluationConfig
from repro.core.framework import StaticEvaluator, evaluate_accuracy
from repro.cost.annotator import SimulatedAnnotator
from repro.sampling.srs import SimpleRandomDesign
from repro.sampling.twcs import TwoStageWeightedClusterDesign
from repro.sampling.wcs import WeightedClusterDesign


class TestEvaluationConfig:
    def test_defaults_match_paper_task(self):
        config = EvaluationConfig()
        assert config.moe_target == 0.05
        assert config.confidence_level == 0.95
        assert config.min_units == 30

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"moe_target": 0.0},
            {"moe_target": 1.0},
            {"confidence_level": 1.0},
            {"batch_size": 0},
            {"min_units": 1},
            {"min_units": 50, "max_units": 10},
        ],
    )
    def test_invalid_configurations(self, kwargs):
        with pytest.raises(ValueError):
            EvaluationConfig(**kwargs)


class TestStaticEvaluator:
    def test_stops_once_moe_satisfied(self, nell):
        design = TwoStageWeightedClusterDesign(nell.graph, second_stage_size=5, seed=0)
        annotator = SimulatedAnnotator(nell.oracle, seed=0)
        config = EvaluationConfig(moe_target=0.05, confidence_level=0.95, batch_size=10)
        report = StaticEvaluator(design, annotator, config).run()
        assert report.satisfied
        assert report.margin_of_error <= 0.05
        assert report.num_units >= config.min_units
        # No over-sampling: removing the last batch must violate the MoE
        # requirement or the minimum-units requirement.
        assert report.num_units <= config.min_units or report.iterations >= 1

    def test_min_units_enforced_even_if_moe_tiny(self, yago):
        """On a highly accurate KG the MoE is tiny immediately, but the CLT
        minimum still applies."""
        design = SimpleRandomDesign(yago.graph, seed=0)
        annotator = SimulatedAnnotator(yago.oracle, seed=0)
        config = EvaluationConfig(moe_target=0.05, min_units=30, batch_size=10)
        report = StaticEvaluator(design, annotator, config).run()
        assert report.num_units >= 30

    def test_max_units_budget_respected(self, nell):
        # Cluster accuracies on NELL vary between 0 and 1, so a 0.1% MoE is far
        # out of reach within a 50-cluster budget.
        design = WeightedClusterDesign(nell.graph, seed=0)
        annotator = SimulatedAnnotator(nell.oracle, seed=0)
        config = EvaluationConfig(
            moe_target=0.001, confidence_level=0.95, batch_size=10, max_units=50
        )
        report = StaticEvaluator(design, annotator, config).run()
        assert report.num_units <= 50 + config.batch_size
        assert not report.satisfied

    def test_population_exhaustion_terminates(self, toy_kg):
        graph, oracle = toy_kg
        design = SimpleRandomDesign(graph, seed=0)
        annotator = SimulatedAnnotator(oracle, seed=0)
        config = EvaluationConfig(moe_target=0.01, batch_size=5, min_units=5)
        report = StaticEvaluator(design, annotator, config).run()
        assert report.num_triples_annotated == graph.num_triples
        assert report.accuracy == pytest.approx(oracle.true_accuracy(graph))

    def test_cost_accounting_matches_annotator(self, nell):
        design = TwoStageWeightedClusterDesign(nell.graph, second_stage_size=5, seed=1)
        annotator = SimulatedAnnotator(nell.oracle, seed=1)
        report = StaticEvaluator(design, annotator).run()
        assert report.annotation_cost_seconds == pytest.approx(annotator.total_cost_seconds)
        assert report.num_triples_annotated == annotator.total_triples_annotated
        assert report.num_entities_identified == annotator.entities_identified
        assert report.annotation_cost_hours == pytest.approx(report.annotation_cost_seconds / 3600)

    def test_run_with_reset_false_continues_previous_state(self, nell):
        design = TwoStageWeightedClusterDesign(nell.graph, second_stage_size=5, seed=2)
        annotator = SimulatedAnnotator(nell.oracle, seed=2)
        config = EvaluationConfig(moe_target=0.08)
        evaluator = StaticEvaluator(design, annotator, config)
        first = evaluator.run()
        # Tighten the requirement and continue without resetting: the design
        # must keep its earlier units.
        evaluator.config = EvaluationConfig(moe_target=0.04)
        second = evaluator.run(reset=False)
        assert second.num_units >= first.num_units
        assert second.margin_of_error <= 0.04

    def test_run_with_reset_true_clears_annotator(self, nell):
        design = TwoStageWeightedClusterDesign(nell.graph, second_stage_size=5, seed=3)
        annotator = SimulatedAnnotator(nell.oracle, seed=3)
        evaluator = StaticEvaluator(design, annotator)
        evaluator.run()
        first_cost = annotator.total_cost_seconds
        evaluator.run(reset=True)
        # A fresh run re-charges from zero, so the session total is not the sum.
        assert annotator.total_cost_seconds < 2 * first_cost

    def test_estimates_are_probabilities(self, movie_small):
        for seed in range(5):
            design = WeightedClusterDesign(movie_small.graph, seed=seed)
            annotator = SimulatedAnnotator(movie_small.oracle, seed=seed)
            report = StaticEvaluator(design, annotator).run()
            assert 0.0 <= report.accuracy <= 1.0
            interval = report.confidence_interval
            assert 0.0 <= interval.lower <= interval.upper <= 1.0


class TestEvaluateAccuracyHelper:
    def test_convenience_wrapper(self, nell):
        design = TwoStageWeightedClusterDesign(nell.graph, second_stage_size=5, seed=0)
        annotator = SimulatedAnnotator(nell.oracle, seed=0)
        report = evaluate_accuracy(design, annotator, moe_target=0.05)
        assert report.satisfied
        assert abs(report.accuracy - nell.true_accuracy) < 0.1

    def test_summary_mentions_key_quantities(self, nell):
        design = SimpleRandomDesign(nell.graph, seed=0)
        annotator = SimulatedAnnotator(nell.oracle, seed=0)
        report = evaluate_accuracy(design, annotator)
        summary = report.summary()
        assert "accuracy=" in summary
        assert "cost=" in summary

    def test_estimation_quality_across_designs(self, nell):
        """All designs land within a few points of the true accuracy on average."""
        designs = {
            "srs": lambda seed: SimpleRandomDesign(nell.graph, seed=seed),
            "wcs": lambda seed: WeightedClusterDesign(nell.graph, seed=seed),
            "twcs": lambda seed: TwoStageWeightedClusterDesign(nell.graph, 5, seed=seed),
        }
        for factory in designs.values():
            errors = []
            for seed in range(10):
                annotator = SimulatedAnnotator(nell.oracle, seed=seed)
                report = evaluate_accuracy(factory(seed), annotator)
                errors.append(abs(report.accuracy - nell.true_accuracy))
            assert sum(errors) / len(errors) < 0.06

    def test_moe_threshold_controls_sample_size(self, movie_small):
        loose_units, tight_units = [], []
        for seed in range(3):
            annotator = SimulatedAnnotator(movie_small.oracle, seed=seed)
            loose = evaluate_accuracy(
                TwoStageWeightedClusterDesign(movie_small.graph, 5, seed=seed),
                annotator,
                moe_target=0.10,
            )
            annotator = SimulatedAnnotator(movie_small.oracle, seed=seed)
            tight = evaluate_accuracy(
                TwoStageWeightedClusterDesign(movie_small.graph, 5, seed=seed),
                annotator,
                moe_target=0.03,
            )
            loose_units.append(loose.num_units)
            tight_units.append(tight.num_units)
        assert sum(tight_units) > sum(loose_units)

    def test_report_margin_of_error_infinite_when_no_samples(self):
        from repro.core.result import EvaluationReport
        from repro.sampling.base import Estimate

        report = EvaluationReport(
            estimate=Estimate(0.0, math.inf, 0, 0),
            confidence_level=0.95,
            moe_target=0.05,
            satisfied=False,
            iterations=0,
            num_units=0,
            num_triples_annotated=0,
            num_entities_identified=0,
            annotation_cost_seconds=0.0,
        )
        assert math.isinf(report.margin_of_error)
        assert not report.satisfied
