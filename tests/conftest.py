"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cost.annotator import SimulatedAnnotator
from repro.cost.model import CostModel
from repro.generators.datasets import LabelledKG, make_movie_like, make_nell_like, make_yago_like
from repro.kg.graph import KnowledgeGraph
from repro.kg.triple import Triple
from repro.labels.oracle import LabelOracle


def build_toy_kg() -> tuple[KnowledgeGraph, LabelOracle]:
    """A small handcrafted KG with exactly known cluster structure and labels.

    Layout (entity: sizes / correct counts):

    * ``athlete_1``: 4 triples, 3 correct (accuracy 0.75)
    * ``athlete_2``: 2 triples, 2 correct (accuracy 1.0)
    * ``movie_1``:   6 triples, 3 correct (accuracy 0.5)
    * ``city_1``:    1 triple, 0 correct (accuracy 0.0)

    Total: 13 triples, 8 correct → overall accuracy 8/13 ≈ 0.6154.
    """
    spec = {
        "athlete_1": [True, True, True, False],
        "athlete_2": [True, True],
        "movie_1": [True, False, True, False, True, False],
        "city_1": [False],
    }
    graph = KnowledgeGraph(name="toy")
    labels: dict[Triple, bool] = {}
    for entity, flags in spec.items():
        for index, flag in enumerate(flags):
            triple = Triple(entity, f"predicate_{index}", f"object_{entity}_{index}")
            graph.add(triple)
            labels[triple] = flag
    return graph, LabelOracle(labels)


@pytest.fixture()
def toy_kg() -> tuple[KnowledgeGraph, LabelOracle]:
    """Fresh toy KG and oracle for each test."""
    return build_toy_kg()


@pytest.fixture()
def toy_graph(toy_kg) -> KnowledgeGraph:
    return toy_kg[0]


@pytest.fixture()
def toy_oracle(toy_kg) -> LabelOracle:
    return toy_kg[1]


@pytest.fixture()
def toy_annotator(toy_oracle) -> SimulatedAnnotator:
    """Deterministic annotator (no timing noise) over the toy oracle."""
    return SimulatedAnnotator(toy_oracle, cost_model=CostModel(), seed=0)


@pytest.fixture(scope="session")
def nell() -> LabelledKG:
    """Session-scoped NELL-like dataset (≈1 800 triples)."""
    return make_nell_like(seed=0)


@pytest.fixture(scope="session")
def yago() -> LabelledKG:
    """Session-scoped YAGO-like dataset (≈1 400 triples, 99% accurate)."""
    return make_yago_like(seed=0)


@pytest.fixture(scope="session")
def movie_small() -> LabelledKG:
    """Session-scoped, heavily scaled MOVIE-like dataset (fast tests)."""
    return make_movie_like(seed=0, scale=0.005)


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic random generator."""
    return np.random.default_rng(1234)
