"""Shared fixtures for the test suite."""

from __future__ import annotations

import json
import signal
from pathlib import Path

import numpy as np
import pytest

from repro.cost.annotator import SimulatedAnnotator
from repro.cost.model import CostModel
from repro.generators.datasets import LabelledKG, make_movie_like, make_nell_like, make_yago_like
from repro.kg.graph import KnowledgeGraph
from repro.kg.triple import Triple
from repro.labels.oracle import LabelOracle

GOLDEN_DIR = Path(__file__).parent / "golden"


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/*.json from the current trajectories "
        "instead of comparing against them",
    )


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item: pytest.Item):
    """Enforce ``@pytest.mark.timeout(N)`` as a hard SIGALRM deadline.

    The RPC suite talks to real subprocesses over real sockets; a protocol
    bug must fail the test, not hang the whole run.  POSIX-only (SIGALRM);
    elsewhere the marker is a no-op.
    """
    marker = item.get_closest_marker("timeout")
    if marker is None or not hasattr(signal, "SIGALRM"):
        return (yield)
    seconds = int(marker.args[0]) if marker.args else 60

    def _expired(signum, frame):
        raise TimeoutError(f"{item.nodeid} exceeded its hard {seconds}s timeout")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(seconds)
    try:
        return (yield)
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


class GoldenStore:
    """Compare a payload against a checked-in golden JSON file.

    ``check(name, payload)`` asserts exact equality (floats survive the JSON
    round-trip bit-for-bit via ``repr``-based serialisation) against
    ``tests/golden/<name>.json``.  With ``--update-golden`` the file is
    rewritten instead — review the diff before committing it: every change
    is an intentional trajectory shift.
    """

    def __init__(self, update: bool) -> None:
        self.update = update

    def check(self, name: str, payload) -> None:
        path = GOLDEN_DIR / f"{name}.json"
        if self.update:
            GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
            return
        if not path.is_file():
            pytest.fail(
                f"golden file {path} is missing; run "
                f"`pytest {Path(__file__).parent.name} --update-golden` and commit it"
            )
        recorded = json.loads(path.read_text())
        assert payload == recorded, (
            f"trajectory diverged from {path.name}; if the change is intentional, "
            "regenerate with --update-golden and review the diff"
        )


@pytest.fixture()
def golden(request: pytest.FixtureRequest) -> GoldenStore:
    """Golden-file comparator honouring the ``--update-golden`` flag."""
    return GoldenStore(request.config.getoption("--update-golden"))


def build_toy_kg() -> tuple[KnowledgeGraph, LabelOracle]:
    """A small handcrafted KG with exactly known cluster structure and labels.

    Layout (entity: sizes / correct counts):

    * ``athlete_1``: 4 triples, 3 correct (accuracy 0.75)
    * ``athlete_2``: 2 triples, 2 correct (accuracy 1.0)
    * ``movie_1``:   6 triples, 3 correct (accuracy 0.5)
    * ``city_1``:    1 triple, 0 correct (accuracy 0.0)

    Total: 13 triples, 8 correct → overall accuracy 8/13 ≈ 0.6154.
    """
    spec = {
        "athlete_1": [True, True, True, False],
        "athlete_2": [True, True],
        "movie_1": [True, False, True, False, True, False],
        "city_1": [False],
    }
    graph = KnowledgeGraph(name="toy")
    labels: dict[Triple, bool] = {}
    for entity, flags in spec.items():
        for index, flag in enumerate(flags):
            triple = Triple(entity, f"predicate_{index}", f"object_{entity}_{index}")
            graph.add(triple)
            labels[triple] = flag
    return graph, LabelOracle(labels)


@pytest.fixture()
def toy_kg() -> tuple[KnowledgeGraph, LabelOracle]:
    """Fresh toy KG and oracle for each test."""
    return build_toy_kg()


@pytest.fixture()
def toy_graph(toy_kg) -> KnowledgeGraph:
    return toy_kg[0]


@pytest.fixture()
def toy_oracle(toy_kg) -> LabelOracle:
    return toy_kg[1]


@pytest.fixture()
def toy_annotator(toy_oracle) -> SimulatedAnnotator:
    """Deterministic annotator (no timing noise) over the toy oracle."""
    return SimulatedAnnotator(toy_oracle, cost_model=CostModel(), seed=0)


@pytest.fixture(scope="session")
def nell() -> LabelledKG:
    """Session-scoped NELL-like dataset (≈1 800 triples)."""
    return make_nell_like(seed=0)


@pytest.fixture(scope="session")
def yago() -> LabelledKG:
    """Session-scoped YAGO-like dataset (≈1 400 triples, 99% accurate)."""
    return make_yago_like(seed=0)


@pytest.fixture(scope="session")
def movie_small() -> LabelledKG:
    """Session-scoped, heavily scaled MOVIE-like dataset (fast tests)."""
    return make_movie_like(seed=0, scale=0.005)


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic random generator."""
    return np.random.default_rng(1234)
