"""Unit tests for weighted reservoir sampling (Efraimidis–Spirakis A-Res)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sampling.reservoir import WeightedReservoir


class TestWeightedReservoirBasics:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            WeightedReservoir(capacity=0)

    def test_fills_up_to_capacity_without_eviction(self):
        reservoir = WeightedReservoir(capacity=3, seed=0)
        evicted = [reservoir.offer(f"item{i}", weight=1.0) for i in range(3)]
        assert evicted == [None, None, None]
        assert reservoir.size == 3
        assert reservoir.is_full
        assert len(reservoir) == 3

    def test_eviction_returns_previous_minimum(self):
        reservoir = WeightedReservoir(capacity=2, seed=1)
        reservoir.offer("a", weight=1.0)
        reservoir.offer("b", weight=1.0)
        # A huge weight gives a key close to 1, guaranteeing a replacement.
        evicted = reservoir.offer("c", weight=1e9)
        assert evicted is not None
        assert evicted.item_id in {"a", "b"}
        assert reservoir.contains("c")
        assert reservoir.size == 2

    def test_min_key_tracking(self):
        reservoir = WeightedReservoir(capacity=4, seed=2)
        assert reservoir.min_key == float("inf")
        for i in range(4):
            reservoir.offer(f"item{i}", weight=2.0)
        keys = sorted(item.key for item in reservoir.items)
        assert reservoir.min_key == pytest.approx(keys[0])

    def test_keys_in_unit_interval(self):
        reservoir = WeightedReservoir(capacity=50, seed=3)
        for i in range(50):
            reservoir.offer(f"item{i}", weight=float(i + 1))
        assert all(0.0 < item.key <= 1.0 for item in reservoir.items)

    def test_invalid_weight(self):
        reservoir = WeightedReservoir(capacity=2, seed=0)
        with pytest.raises(ValueError):
            reservoir.offer("bad", weight=0.0)
        with pytest.raises(ValueError):
            reservoir.offer("bad", weight=-2.0)

    def test_payload_round_trip(self):
        reservoir = WeightedReservoir(capacity=1, seed=0)
        reservoir.offer("a", weight=1.0, payload={"accuracy": 0.75})
        assert reservoir.items[0].payload == {"accuracy": 0.75}

    def test_counters(self):
        reservoir = WeightedReservoir(capacity=2, seed=5)
        for i in range(20):
            reservoir.offer(f"item{i}", weight=1.0)
        assert reservoir.num_offers == 20
        assert 0 <= reservoir.num_replacements <= 18
        assert reservoir.size == 2

    def test_iteration_yields_items(self):
        reservoir = WeightedReservoir(capacity=3, seed=0)
        for i in range(3):
            reservoir.offer(f"item{i}", weight=1.0)
        assert {item.item_id for item in reservoir} == {"item0", "item1", "item2"}


class TestWeightedReservoirDistribution:
    def test_inclusion_probability_increases_with_weight(self):
        """Items with larger weights must be retained more often (PPS behaviour)."""
        counts = {"light": 0, "heavy": 0}
        for seed in range(600):
            reservoir = WeightedReservoir(capacity=5, seed=seed)
            rng = np.random.default_rng(seed + 10_000)
            population = [("heavy", 20.0)] + [(f"light{i}", 1.0) for i in range(30)]
            order = rng.permutation(len(population))
            for index in order:
                item_id, weight = population[int(index)]
                reservoir.offer(item_id, weight)
            retained = {item.item_id for item in reservoir.items}
            if "heavy" in retained:
                counts["heavy"] += 1
            if "light0" in retained:
                counts["light"] += 1
        assert counts["heavy"] > 3 * counts["light"]

    def test_uniform_weights_give_uniform_inclusion(self):
        inclusion = np.zeros(20)
        trials = 800
        for seed in range(trials):
            reservoir = WeightedReservoir(capacity=5, seed=seed)
            for i in range(20):
                reservoir.offer(f"item{i}", weight=1.0)
            for item in reservoir.items:
                inclusion[int(item.item_id.removeprefix("item"))] += 1
        probabilities = inclusion / trials
        # Every item should be retained with probability ≈ 5/20 = 0.25.
        assert probabilities.mean() == pytest.approx(0.25, abs=0.01)
        assert probabilities.max() - probabilities.min() < 0.12

    def test_order_of_offers_does_not_matter_on_average(self):
        """A-Res inclusion probabilities are invariant to stream order."""
        first_item_retained = {"forward": 0, "reverse": 0}
        for seed in range(500):
            for direction in ("forward", "reverse"):
                reservoir = WeightedReservoir(capacity=3, seed=seed)
                items = [(f"item{i}", float(i + 1)) for i in range(10)]
                stream = items if direction == "forward" else list(reversed(items))
                for item_id, weight in stream:
                    reservoir.offer(item_id, weight)
                if reservoir.contains("item9"):
                    first_item_retained[direction] += 1
        forward = first_item_retained["forward"] / 500
        reverse = first_item_retained["reverse"] / 500
        assert forward == pytest.approx(reverse, abs=0.08)
