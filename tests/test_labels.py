"""Unit tests for the label oracle and the synthetic label models (REM, BMM)."""

from __future__ import annotations

import pytest

from repro.kg.graph import KnowledgeGraph
from repro.kg.triple import Triple
from repro.labels.adversarial import AdversarialClusterModel
from repro.labels.binomial_mixture import BinomialMixtureModel
from repro.labels.oracle import LabelOracle
from repro.labels.random_error import RandomErrorModel


class TestLabelOracle:
    def test_label_lookup(self, toy_kg):
        graph, oracle = toy_kg
        first = graph.triple_at(0)
        assert oracle.label(first) in (True, False)
        assert first in oracle
        assert len(oracle) == graph.num_triples

    def test_strict_mode_raises_for_unknown(self, toy_oracle):
        with pytest.raises(KeyError):
            toy_oracle.label(Triple("ghost", "p", "o"))

    def test_non_strict_mode_defaults_to_true(self):
        oracle = LabelOracle({}, strict=False)
        assert oracle.label(Triple("ghost", "p", "o")) is True

    def test_labels_for_preserves_order(self, toy_kg):
        graph, oracle = toy_kg
        triples = list(graph)[:3]
        assert oracle.labels_for(triples) == [oracle.label(t) for t in triples]

    def test_true_accuracy_on_toy(self, toy_kg):
        graph, oracle = toy_kg
        assert oracle.true_accuracy(graph) == pytest.approx(8 / 13)

    def test_true_accuracy_empty_graph(self, toy_oracle):
        assert toy_oracle.true_accuracy(KnowledgeGraph()) == 0.0

    def test_cluster_accuracy(self, toy_kg):
        graph, oracle = toy_kg
        assert oracle.cluster_accuracy(graph, "movie_1") == pytest.approx(0.5)
        assert oracle.cluster_accuracy(graph, "athlete_2") == pytest.approx(1.0)

    def test_cluster_accuracies_covers_all_entities(self, toy_kg):
        graph, oracle = toy_kg
        accuracies = oracle.cluster_accuracies(graph)
        assert set(accuracies) == set(graph.entity_ids)

    def test_extend_adds_and_overrides(self):
        a = Triple("e1", "p", "o1")
        b = Triple("e2", "p", "o2")
        oracle = LabelOracle({a: True})
        oracle.extend(LabelOracle({a: False, b: True}))
        assert oracle.label(a) is False
        assert oracle.label(b) is True

    def test_merged_with_does_not_mutate(self):
        a = Triple("e1", "p", "o1")
        b = Triple("e2", "p", "o2")
        original = LabelOracle({a: True})
        merged = original.merged_with(LabelOracle({b: False}))
        assert b not in original
        assert merged.label(b) is False

    def test_as_dict_returns_copy(self, toy_oracle):
        copy = toy_oracle.as_dict()
        copy.clear()
        assert len(toy_oracle) > 0


class TestRandomErrorModel:
    def test_invalid_error_rate(self):
        with pytest.raises(ValueError):
            RandomErrorModel(error_rate=1.5)

    def test_accuracy_property(self):
        assert RandomErrorModel(error_rate=0.25).accuracy == pytest.approx(0.75)
        assert RandomErrorModel.with_accuracy(0.8).error_rate == pytest.approx(0.2)

    def test_extreme_rates(self, toy_graph):
        all_correct = RandomErrorModel(error_rate=0.0, seed=0).generate(toy_graph)
        all_wrong = RandomErrorModel(error_rate=1.0, seed=0).generate(toy_graph)
        assert all_correct.true_accuracy(toy_graph) == 1.0
        assert all_wrong.true_accuracy(toy_graph) == 0.0

    def test_realised_accuracy_close_to_target(self, movie_small):
        oracle = RandomErrorModel.with_accuracy(0.7, seed=3).generate(movie_small.graph)
        realised = oracle.true_accuracy(movie_small.graph)
        assert realised == pytest.approx(0.7, abs=0.02)

    def test_covers_every_triple(self, toy_graph):
        oracle = RandomErrorModel(error_rate=0.5, seed=1).generate(toy_graph)
        assert len(oracle) == toy_graph.num_triples

    def test_deterministic_under_seed(self, toy_graph):
        first = RandomErrorModel(0.5, seed=9).generate(toy_graph).as_dict()
        second = RandomErrorModel(0.5, seed=9).generate(toy_graph).as_dict()
        assert first == second

    def test_with_accuracy_rejects_out_of_range(self):
        # Regression: these used to surface as a confusing error_rate-phrased
        # message (1 - accuracy); the guard must name the accuracy argument.
        for bad in (-0.1, 1.5, float("nan")):
            with pytest.raises(ValueError, match="accuracy"):
                RandomErrorModel.with_accuracy(bad)

    def test_with_accuracy_accepts_boundaries(self):
        assert RandomErrorModel.with_accuracy(0.0).error_rate == pytest.approx(1.0)
        assert RandomErrorModel.with_accuracy(1.0).error_rate == pytest.approx(0.0)


class TestBinomialMixtureModel:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BinomialMixtureModel(c=-0.1)
        with pytest.raises(ValueError):
            BinomialMixtureModel(sigma=-1.0)
        with pytest.raises(ValueError):
            BinomialMixtureModel(k=0)

    def test_cluster_probability_below_threshold(self):
        model = BinomialMixtureModel(c=0.5, sigma=0.0, k=3)
        assert model.cluster_probability(1) == pytest.approx(0.5)
        assert model.cluster_probability(2) == pytest.approx(0.5)

    def test_cluster_probability_sigmoid_above_threshold(self):
        model = BinomialMixtureModel(c=0.5, sigma=0.0, k=3)
        assert model.cluster_probability(3) == pytest.approx(0.5)
        assert model.cluster_probability(20) > model.cluster_probability(5)
        assert model.cluster_probability(200) == pytest.approx(1.0, abs=1e-6)

    def test_probability_clipped_to_unit_interval(self):
        model = BinomialMixtureModel(c=0.5, sigma=0.0, k=3)
        assert model.cluster_probability(10, noise=5.0) == 1.0
        assert model.cluster_probability(10, noise=-5.0) == 0.0

    def test_expected_cluster_accuracy_matches_noise_free(self):
        model = BinomialMixtureModel(c=0.1, sigma=0.3, k=3)
        assert model.expected_cluster_accuracy(8) == model.cluster_probability(8, 0.0)

    def test_generate_covers_every_triple(self, nell):
        oracle = BinomialMixtureModel(seed=0).generate(nell.graph)
        assert len(oracle) == nell.graph.num_triples

    def test_strong_coupling_creates_size_accuracy_correlation(self, movie_small):
        from repro.kg.statistics import size_accuracy_correlation

        strong = BinomialMixtureModel(c=0.5, sigma=0.05, seed=1).generate(movie_small.graph)
        correlation = size_accuracy_correlation(movie_small.graph, strong.as_dict())
        assert correlation > 0.1

    def test_default_parameters_give_moderate_accuracy(self, movie_small):
        oracle = BinomialMixtureModel(seed=2).generate(movie_small.graph)
        accuracy = oracle.true_accuracy(movie_small.graph)
        # Paper reports ≈62% for the default parameters on MOVIE-SYN.
        assert 0.45 <= accuracy <= 0.75

    def test_deterministic_under_seed(self, toy_graph):
        first = BinomialMixtureModel(seed=5).generate(toy_graph).as_dict()
        second = BinomialMixtureModel(seed=5).generate(toy_graph).as_dict()
        assert first == second

    def test_noise_free_large_clusters_all_correct(self):
        graph = KnowledgeGraph([Triple("big", "p", f"o{i}") for i in range(500)])
        oracle = BinomialMixtureModel(c=1.0, sigma=0.0, k=3, seed=0).generate(graph)
        assert oracle.true_accuracy(graph) == pytest.approx(1.0, abs=0.01)

    def test_rho_validation(self):
        with pytest.raises(ValueError):
            BinomialMixtureModel(rho=-0.1)
        with pytest.raises(ValueError):
            BinomialMixtureModel(rho=1.01)

    def test_rho_zero_matches_original_stream(self, movie_small):
        # rho=0 must take the exact pre-rho code path: byte-identical labels
        # to a default model under the same seed.
        baseline = BinomialMixtureModel(seed=11).generate(movie_small.graph).as_dict()
        with_rho = BinomialMixtureModel(rho=0.0, seed=11).generate(movie_small.graph).as_dict()
        assert baseline == with_rho

    def test_rho_one_makes_clusters_unanimous(self):
        graph = KnowledgeGraph(
            [Triple(f"e{c}", "p", f"o{i}") for c in range(40) for i in range(10)]
        )
        oracle = BinomialMixtureModel(c=0.05, sigma=0.2, rho=1.0, seed=3).generate(graph)
        labels = oracle.as_dict()
        for cluster in graph.clusters():
            cluster_labels = {labels[triple] for triple in cluster}
            assert len(cluster_labels) == 1

    def test_rho_preserves_marginal_accuracy(self):
        # Copying a shared Bernoulli(p) with probability rho leaves each
        # triple's marginal at p, so overall accuracy should match rho=0.
        graph = KnowledgeGraph(
            [Triple(f"e{c}", "p", f"o{i}") for c in range(300) for i in range(8)]
        )
        independent = BinomialMixtureModel(c=0.5, sigma=0.0, seed=7).generate(graph)
        correlated = BinomialMixtureModel(c=0.5, sigma=0.0, rho=0.7, seed=7).generate(graph)
        assert correlated.true_accuracy(graph) == pytest.approx(
            independent.true_accuracy(graph), abs=0.05
        )

    def test_rho_inflates_between_cluster_variance(self):
        graph = KnowledgeGraph(
            [Triple(f"e{c}", "p", f"o{i}") for c in range(200) for i in range(10)]
        )

        def cluster_accuracy_variance(oracle):
            import numpy as np

            accuracies = list(oracle.cluster_accuracies(graph).values())
            return float(np.var(accuracies))

        independent = BinomialMixtureModel(c=0.0, sigma=0.0, seed=5).generate(graph)
        correlated = BinomialMixtureModel(c=0.0, sigma=0.0, rho=0.9, seed=5).generate(graph)
        assert cluster_accuracy_variance(correlated) > 2 * cluster_accuracy_variance(independent)


class TestAdversarialClusterModel:
    def _graph(self):
        # Cluster sizes 40, 30, 20, 10, 10: total 110 triples.
        sizes = {"a": 40, "b": 30, "c": 20, "d": 10, "e": 10}
        return KnowledgeGraph(
            [Triple(entity, "p", f"o{i}") for entity, size in sizes.items() for i in range(size)]
        )

    def test_parameter_validation(self):
        for kwargs in (
            {"poisoned_mass": -0.1},
            {"poisoned_mass": 1.5},
            {"poisoned_accuracy": 2.0},
            {"base_accuracy": -1.0},
        ):
            with pytest.raises(ValueError):
                AdversarialClusterModel(**kwargs)

    def test_poisons_largest_clusters_first(self):
        graph = self._graph()
        model = AdversarialClusterModel(poisoned_mass=0.3, seed=0)
        rows = model.poisoned_rows(graph)
        entities = {graph.entity_ids[row] for row in rows}
        # 30% of 110 = 33 triples: the 40-triple cluster alone covers it.
        assert entities == {"a"}

    def test_step_function_accuracy_profile(self):
        graph = self._graph()
        model = AdversarialClusterModel(poisoned_mass=0.3, seed=1)
        oracle = model.generate(graph)
        assert oracle.cluster_accuracy(graph, "a") == 0.0
        for entity in ("b", "c", "d", "e"):
            assert oracle.cluster_accuracy(graph, entity) == 1.0

    def test_expected_accuracy_matches_realised_for_deterministic_rates(self):
        graph = self._graph()
        model = AdversarialClusterModel(poisoned_mass=0.3, seed=2)
        expected = model.expected_accuracy(graph)
        assert expected == pytest.approx(70 / 110)
        assert model.generate(graph).true_accuracy(graph) == pytest.approx(expected)

    def test_zero_mass_poisons_nothing(self):
        graph = self._graph()
        model = AdversarialClusterModel(poisoned_mass=0.0, seed=3)
        assert model.poisoned_rows(graph) == set()
        assert model.generate(graph).true_accuracy(graph) == 1.0

    def test_full_mass_poisons_everything(self):
        graph = self._graph()
        model = AdversarialClusterModel(poisoned_mass=1.0, seed=4)
        assert len(model.poisoned_rows(graph)) == graph.num_entities
        assert model.generate(graph).true_accuracy(graph) == 0.0

    def test_stream_independent_of_thresholds(self):
        # The same seed consumes one uniform per triple regardless of the
        # poisoning split, so non-extreme accuracies stay comparable.
        graph = self._graph()
        lenient = AdversarialClusterModel(
            poisoned_mass=0.0, base_accuracy=0.5, seed=9
        ).generate(graph)
        harsh = AdversarialClusterModel(
            poisoned_mass=1.0, poisoned_accuracy=0.5, seed=9
        ).generate(graph)
        assert lenient.as_dict() == harsh.as_dict()
