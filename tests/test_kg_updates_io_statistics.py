"""Unit tests for KG evolution, I/O and cluster statistics."""

from __future__ import annotations

import pytest

from repro.kg.graph import KnowledgeGraph
from repro.kg.io import read_labelled_tsv, read_triples_tsv, write_labelled_tsv, write_triples_tsv
from repro.kg.statistics import (
    cluster_size_summary,
    entity_accuracy_by_size,
    size_accuracy_correlation,
)
from repro.kg.triple import Triple
from repro.kg.updates import EvolvingKnowledgeGraph, UpdateBatch


class TestUpdateBatch:
    def test_size_and_iteration(self):
        triples = tuple(Triple("e1", "p", f"o{i}") for i in range(3))
        batch = UpdateBatch("delta-1", triples)
        assert batch.size == 3
        assert len(batch) == 3
        assert list(batch) == list(triples)

    def test_entity_insertions_grouping(self):
        batch = UpdateBatch(
            "delta-2",
            (
                Triple("e1", "p", "o1"),
                Triple("e2", "p", "o2"),
                Triple("e1", "q", "o3"),
            ),
        )
        insertions = batch.entity_insertions()
        assert set(insertions) == {"delta-2/e1", "delta-2/e2"}
        assert insertions["delta-2/e1"].size == 2
        assert insertions["delta-2/e2"].size == 1

    def test_entity_insertions_use_batch_scoped_keys(self):
        first = UpdateBatch("a", (Triple("e1", "p", "o1"),))
        second = UpdateBatch("b", (Triple("e1", "p", "o2"),))
        assert set(first.entity_insertions()) == {"a/e1"}
        assert set(second.entity_insertions()) == {"b/e1"}

    def test_as_knowledge_graph(self):
        batch = UpdateBatch("delta-3", (Triple("e1", "p", "o1"), Triple("e2", "p", "o2")))
        graph = batch.as_knowledge_graph()
        assert graph.num_triples == 2
        assert graph.name == "delta-3"


class TestEvolvingKnowledgeGraph:
    def test_apply_updates_current_only(self):
        base = KnowledgeGraph([Triple("e1", "p", "o")], name="base")
        evolving = EvolvingKnowledgeGraph(base)
        evolving.apply(UpdateBatch("d1", (Triple("e2", "p", "o"),)))
        assert base.num_triples == 1
        assert evolving.current.num_triples == 2
        assert evolving.base.num_triples == 1

    def test_applied_batches_in_order(self):
        base = KnowledgeGraph([Triple("e1", "p", "o")])
        evolving = EvolvingKnowledgeGraph(base)
        batches = [UpdateBatch(f"d{i}", (Triple(f"x{i}", "p", "o"),)) for i in range(3)]
        evolving.apply_all(batches)
        assert [b.batch_id for b in evolving.applied_batches] == ["d0", "d1", "d2"]
        assert evolving.num_batches == 3

    def test_enrichment_of_existing_entity_grows_cluster(self):
        base = KnowledgeGraph([Triple("e1", "p", "o1")])
        evolving = EvolvingKnowledgeGraph(base)
        evolving.apply(UpdateBatch("d1", (Triple("e1", "p", "o2"),)))
        assert evolving.current.cluster_size("e1") == 2


class TestIO:
    def test_triples_round_trip(self, tmp_path, toy_graph):
        path = tmp_path / "kg.tsv"
        written = write_triples_tsv(toy_graph, path)
        assert written == toy_graph.num_triples
        loaded = read_triples_tsv(path)
        assert loaded.num_triples == toy_graph.num_triples
        assert set(loaded.cluster_sizes()) == set(toy_graph.cluster_sizes())

    def test_labelled_round_trip(self, tmp_path, toy_kg):
        graph, oracle = toy_kg
        path = tmp_path / "kg_labels.tsv"
        labels = {t: oracle.label(t) for t in graph}
        write_labelled_tsv(labels, path)
        loaded_graph, loaded_labels = read_labelled_tsv(path)
        assert loaded_graph.num_triples == graph.num_triples
        assert sum(loaded_labels.values()) == sum(labels.values())

    def test_read_skips_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "kg.tsv"
        path.write_text("# comment\n\ne1\tp\to1\n", encoding="utf-8")
        graph = read_triples_tsv(path)
        assert graph.num_triples == 1

    def test_read_triples_rejects_short_lines(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("e1\tp\n", encoding="utf-8")
        with pytest.raises(ValueError, match="expected >= 3 columns"):
            read_triples_tsv(path)

    def test_read_labelled_rejects_bad_label(self, tmp_path):
        path = tmp_path / "bad_label.tsv"
        path.write_text("e1\tp\to\tmaybe\n", encoding="utf-8")
        with pytest.raises(ValueError, match="unrecognised label"):
            read_labelled_tsv(path)

    def test_label_token_variants(self, tmp_path):
        path = tmp_path / "labels.tsv"
        path.write_text("e1\tp\to1\ttrue\ne2\tp\to2\t0\ne3\tp\to3\tYES\n", encoding="utf-8")
        _, labels = read_labelled_tsv(path)
        values = {t.subject: v for t, v in labels.items()}
        assert values == {"e1": True, "e2": False, "e3": True}


class TestStatistics:
    def test_cluster_size_summary_on_toy(self, toy_graph):
        summary = cluster_size_summary(toy_graph)
        assert summary.num_entities == 4
        assert summary.num_triples == 13
        assert summary.max_size == 6
        assert summary.min_size == 1
        assert summary.mean_size == pytest.approx(13 / 4)
        assert summary.as_row()["num_triples"] == 13

    def test_cluster_size_summary_empty(self):
        summary = cluster_size_summary(KnowledgeGraph())
        assert summary.num_entities == 0
        assert summary.mean_size == 0.0

    def test_entity_accuracy_by_size(self, toy_kg):
        graph, oracle = toy_kg
        rows = entity_accuracy_by_size(graph, oracle.as_dict())
        by_entity = {entity: (size, acc) for entity, size, acc in rows}
        assert by_entity["athlete_1"] == (4, pytest.approx(0.75))
        assert by_entity["city_1"] == (1, 0.0)

    def test_entity_accuracy_missing_label_raises(self, toy_graph):
        with pytest.raises(KeyError):
            entity_accuracy_by_size(toy_graph, {})

    def test_correlation_positive_when_big_clusters_accurate(self):
        graph = KnowledgeGraph()
        labels = {}
        # Small clusters all wrong, large clusters all right.
        for entity_index, size in enumerate([1, 1, 2, 6, 7, 8]):
            for i in range(size):
                triple = Triple(f"e{entity_index}", "p", f"o{i}")
                graph.add(triple)
                labels[triple] = size >= 6
        assert size_accuracy_correlation(graph, labels) > 0.9

    def test_correlation_zero_for_constant_accuracy(self, nell):
        labels = {t: True for t in nell.graph}
        assert size_accuracy_correlation(nell.graph, labels) == 0.0
