"""Unit tests for the cost model, the simulated annotator and (c1, c2) fitting."""

from __future__ import annotations

import pytest

from repro.cost.annotator import EvaluationTask, SimulatedAnnotator
from repro.cost.fitting import CostObservation, fit_cost_model
from repro.cost.model import CostModel
from repro.kg.triple import Triple


class TestCostModel:
    def test_defaults_match_paper_fit(self):
        model = CostModel()
        assert model.identification_cost == pytest.approx(45.0)
        assert model.validation_cost == pytest.approx(25.0)

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            CostModel(identification_cost=-1.0)

    def test_cost_seconds_equation_4(self):
        model = CostModel(identification_cost=45.0, validation_cost=25.0)
        # Table 4: 24 entities / 178 triples ≈ 1.54 hours.
        assert model.cost_seconds(24, 178) == pytest.approx(24 * 45 + 178 * 25)
        assert model.cost_hours(24, 178) == pytest.approx(1.54, abs=0.01)

    def test_cost_seconds_srs_task(self):
        # Table 4's SRS task: 174 entities / 174 triples = 174 * (45 + 25) s.
        assert CostModel().cost_hours(174, 174) == pytest.approx(174 * 70 / 3600)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            CostModel().cost_seconds(-1, 3)

    def test_sample_cost_counts_distinct_subjects(self):
        model = CostModel()
        triples = [
            Triple("e1", "p", "o1"),
            Triple("e1", "p", "o2"),
            Triple("e2", "p", "o3"),
        ]
        assert model.sample_cost_seconds(triples) == pytest.approx(2 * 45 + 3 * 25)
        assert model.sample_cost_hours(triples) == pytest.approx((2 * 45 + 3 * 25) / 3600)

    def test_per_cluster_upper_bound(self):
        model = CostModel()
        assert model.per_cluster_cost_upper_bound(5) == pytest.approx(45 + 5 * 25)
        with pytest.raises(ValueError):
            model.per_cluster_cost_upper_bound(0)


class TestEvaluationTask:
    def test_valid_task(self):
        task = EvaluationTask("e1", (Triple("e1", "p", "o1"), Triple("e1", "q", "o2")))
        assert task.size == 2

    def test_empty_task_rejected(self):
        with pytest.raises(ValueError):
            EvaluationTask("e1", ())

    def test_mixed_subject_task_rejected(self):
        with pytest.raises(ValueError):
            EvaluationTask("e1", (Triple("e2", "p", "o"),))


class TestSimulatedAnnotator:
    def test_labels_come_from_oracle(self, toy_kg):
        graph, oracle = toy_kg
        annotator = SimulatedAnnotator(oracle)
        result = annotator.annotate_triples(list(graph))
        assert all(result.labels[t] == oracle.label(t) for t in graph)

    def test_cost_matches_equation_4_without_noise(self, toy_kg):
        graph, oracle = toy_kg
        annotator = SimulatedAnnotator(oracle, cost_model=CostModel())
        result = annotator.annotate_triples(list(graph))
        expected = graph.num_entities * 45 + graph.num_triples * 25
        assert result.cost_seconds == pytest.approx(expected)
        assert annotator.total_cost_seconds == pytest.approx(expected)
        assert result.cost_hours == pytest.approx(expected / 3600)

    def test_entity_identified_once_per_session(self, toy_kg):
        graph, oracle = toy_kg
        annotator = SimulatedAnnotator(oracle)
        cluster = list(graph.cluster("movie_1"))
        first = annotator.annotate_triples(cluster[:2])
        second = annotator.annotate_triples(cluster[2:])
        assert first.newly_identified_entities == 1
        assert second.newly_identified_entities == 0
        assert annotator.entities_identified == 1

    def test_already_labelled_triple_not_recharged(self, toy_kg):
        graph, oracle = toy_kg
        annotator = SimulatedAnnotator(oracle)
        triple = graph.triple_at(0)
        annotator.annotate_triples([triple])
        cost_after_first = annotator.total_cost_seconds
        result = annotator.annotate_triples([triple])
        assert annotator.total_cost_seconds == cost_after_first
        assert result.num_triples == 0
        assert result.labels[triple] == oracle.label(triple)

    def test_reset_clears_session(self, toy_kg):
        graph, oracle = toy_kg
        annotator = SimulatedAnnotator(oracle)
        annotator.annotate_triples(list(graph)[:3])
        annotator.reset()
        assert annotator.total_cost_seconds == 0.0
        assert annotator.total_triples_annotated == 0
        assert annotator.entities_identified == 0
        assert annotator.labelled_triples == {}

    def test_annotate_task(self, toy_kg):
        graph, oracle = toy_kg
        task = EvaluationTask("athlete_1", graph.cluster("athlete_1").triples)
        annotator = SimulatedAnnotator(oracle)
        result = annotator.annotate_task(task)
        assert result.num_triples == 4
        assert result.newly_identified_entities == 1

    def test_timeline_is_monotone_and_matches_total(self, toy_kg):
        graph, oracle = toy_kg
        annotator = SimulatedAnnotator(oracle, time_noise_sigma=0.3, seed=0)
        triples = list(graph)
        result, timeline = annotator.annotate_with_timeline(triples)
        assert len(timeline) == len(triples)
        assert all(b >= a for a, b in zip(timeline, timeline[1:]))
        assert timeline[-1] == pytest.approx(result.cost_seconds)

    def test_noise_preserves_expected_cost(self, toy_kg):
        graph, oracle = toy_kg
        noiseless = SimulatedAnnotator(oracle).annotate_triples(list(graph)).cost_seconds
        total = 0.0
        runs = 200
        for seed in range(runs):
            annotator = SimulatedAnnotator(oracle, time_noise_sigma=0.4, seed=seed)
            total += annotator.annotate_triples(list(graph)).cost_seconds
        assert total / runs == pytest.approx(noiseless, rel=0.05)

    def test_negative_noise_sigma_rejected(self, toy_oracle):
        with pytest.raises(ValueError):
            SimulatedAnnotator(toy_oracle, time_noise_sigma=-0.1)


class TestCostFitting:
    def test_recovers_exact_parameters_from_noiseless_data(self):
        model = CostModel(identification_cost=45.0, validation_cost=25.0)
        observations = [
            CostObservation(e, t, model.cost_seconds(e, t))
            for e, t in [(10, 10), (5, 40), (20, 25), (3, 60)]
        ]
        fit = fit_cost_model(observations)
        assert fit.identification_cost == pytest.approx(45.0, abs=1e-6)
        assert fit.validation_cost == pytest.approx(25.0, abs=1e-6)
        assert fit.r_squared == pytest.approx(1.0)

    def test_fit_is_non_negative(self):
        observations = [
            CostObservation(10, 10, 10.0),
            CostObservation(50, 2, 20.0),
            CostObservation(2, 50, 5000.0),
        ]
        fit = fit_cost_model(observations)
        assert fit.identification_cost >= 0.0
        assert fit.validation_cost >= 0.0

    def test_requires_two_observations(self):
        with pytest.raises(ValueError):
            fit_cost_model([CostObservation(1, 1, 70.0)])

    def test_residuals_length_matches(self):
        model = CostModel()
        observations = [
            CostObservation(e, t, model.cost_seconds(e, t) + noise)
            for (e, t), noise in zip([(10, 10), (5, 40), (20, 25)], [3.0, -2.0, 1.0])
        ]
        fit = fit_cost_model(observations)
        assert len(fit.residual_seconds) == 3
        assert 0.9 < fit.r_squared <= 1.0
