"""Statistical self-test of the scenario coverage gate (SRS / Bernoulli case).

The ``srs-bernoulli-exact`` scenario is the one pack member with a
closed-form answer: SRS over i.i.d. Bernoulli(0.9) labels at a pinned sample
size of 140 is the textbook Eq. (1) setting, so its empirical 95% CI coverage
must land inside the Wilson band around 0.95.  The 200-replication exact run
is marked ``slow``; the default leg keeps a 50-replication smoke variant so
CI still exercises the full path.

``test_sequential_stopping_undercovers`` pins the *reason* the exact scenario
needs a fixed n: letting the engine stop at the first satisfied MoE is
optional stopping, and its coverage sits measurably below nominal.
"""

from __future__ import annotations

import pytest

from repro.scenarios import builtin_pack, run_scenario
from repro.stats.ci import wilson_interval


def _exact_spec():
    return builtin_pack(smoke=False).scenario("srs-bernoulli-exact")


@pytest.mark.slow
def test_srs_exact_coverage_200_replications():
    spec = _exact_spec()
    assert spec.replications == 200
    result = run_scenario(spec, backend="memory", root_seed=0)
    assert result.passed, result.failures()
    # The gate's own inputs must be self-consistent with stats/ci.py.
    wilson = wilson_interval(result.coverage_hits, result.coverage_trials, 0.99)
    assert result.wilson_lower == pytest.approx(wilson.lower)
    assert result.wilson_upper == pytest.approx(wilson.upper)
    # Fixed-n SRS on Bernoulli labels is the analytically exact case: the
    # nominal level itself must lie inside the 99% Wilson band, not merely
    # above the slack-adjusted gate threshold.
    assert wilson.contains(0.95)
    # Every replication draws exactly 140 units, so the MoE is essentially
    # constant and close to the z * sqrt(p(1-p)/n) closed form (~0.0497).
    assert result.mean_moe == pytest.approx(0.0497, abs=0.004)


def test_srs_exact_coverage_smoke_50_replications():
    spec = _exact_spec()
    result = run_scenario(spec, backend="memory", replications=50, root_seed=0)
    assert result.passed, result.failures()
    assert result.coverage_trials == 50
    assert wilson_interval(result.coverage_hits, 50, 0.99).contains(0.95)


@pytest.mark.slow
def test_sequential_stopping_undercovers():
    # The companion scenario documents the optional-stopping bias: same graph,
    # same labels, but the real stop-at-MoE loop.  Its coverage must stay
    # inside its declared weakness band yet *below* the exact scenario's.
    pack = builtin_pack(smoke=False)
    sequential = run_scenario(
        pack.scenario("srs-sequential-stopping"), backend="memory", root_seed=0
    )
    exact = run_scenario(pack.scenario("srs-bernoulli-exact"), backend="memory", root_seed=0)
    assert sequential.passed, sequential.failures()
    assert sequential.empirical_coverage < exact.empirical_coverage
    assert sequential.empirical_coverage < 0.95
