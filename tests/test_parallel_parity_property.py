"""Property-based parity: parallel draws == serial position surface.

For random graphs, random seeds and every shard count K ∈ {1, 2, 4, 7}, a
pool-executed sharded run must produce bit-identical estimates *and* Eq. (4)
cost accounting to the serial execution of the same plan, on both storage
backends (the in-memory store's cached CSR and the columnar store's frozen
index yield the same draws).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.kg.graph import KnowledgeGraph
from repro.kg.triple import Triple
from repro.sampling.parallel import PARALLEL_DESIGNS, ParallelSamplingExecutor

_SHARD_COUNTS = (1, 2, 4, 7)


def _random_graph(graph_seed: int) -> KnowledgeGraph:
    """A random KG with skewed cluster sizes and duplicate re-insertions."""
    rng = np.random.default_rng(graph_seed)
    graph = KnowledgeGraph(name=f"prop-{graph_seed}")
    num_entities = int(rng.integers(5, 60))
    for entity in range(num_entities):
        size = int(rng.integers(1, 12))
        for index in range(size):
            graph.add(Triple(f"e{entity}", f"p{index % 4}", f"o{entity}_{index}"))
    # Duplicate adds must be no-ops on every backend.
    for triple in list(graph)[:: max(1, graph.num_triples // 7)]:
        assert graph.add(triple) is False
    return graph


def _drive(graph, labels, design, *, workers, num_shards, seed):
    with ParallelSamplingExecutor(graph, workers=workers, num_shards=num_shards) as executor:
        run = executor.run(design, labels, seed=seed)
        for _ in range(6):
            before = run.num_units
            run.step(25)
            if run.num_units == before:
                break
        return run.estimate(), run.cost_summary()


@pytest.mark.parallel
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    graph_seed=st.integers(min_value=0, max_value=2**20),
    label_seed=st.integers(min_value=0, max_value=2**20),
    run_seed=st.integers(min_value=0, max_value=2**32 - 1),
    design=st.sampled_from(PARALLEL_DESIGNS),
)
def test_parallel_draws_match_serial_on_both_backends(
    graph_seed, label_seed, run_seed, design
):
    memory_graph = _random_graph(graph_seed)
    columnar_graph = memory_graph.to_columnar()
    labels = np.random.default_rng(label_seed).random(memory_graph.num_triples) < 0.8

    for num_shards in _SHARD_COUNTS:
        serial_columnar = _drive(
            columnar_graph, labels, design, workers=None, num_shards=num_shards, seed=run_seed
        )
        serial_memory = _drive(
            memory_graph, labels, design, workers=None, num_shards=num_shards, seed=run_seed
        )
        pooled = _drive(
            columnar_graph, labels, design, workers=2, num_shards=num_shards, seed=run_seed
        )
        # Parallel == serial: estimates and cost accounting, bit for bit.
        assert pooled[0] == serial_columnar[0], (design, num_shards)
        assert pooled[1] == serial_columnar[1], (design, num_shards)
        # Backend-independence of the sharded serial reference itself.
        assert serial_memory[0] == serial_columnar[0], (design, num_shards)
        assert serial_memory[1] == serial_columnar[1], (design, num_shards)
