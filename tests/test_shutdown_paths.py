"""Shutdown/cleanup paths: warm-pool sweeps and worker connection errors.

The three hardened paths this PR fixed are each pinned here:

* ``shutdown_warm_pools`` (fork-pool and shm registries) must release every
  parked pool even when one of them raises from ``shutdown()`` (children
  already dead), and must be idempotent — a draining ``repro serve`` daemon
  calls it explicitly and the ``atexit`` hook runs over the emptied
  registry afterwards.
* a worker's ``_serve_connection`` catches exactly the *expected* failure
  pair (``OSError`` for every socket condition, ``RPCError`` for protocol
  malformations), counts and logs it — while a genuine worker-side bug
  propagates instead of being swallowed by the old bare ``except``.

Everything runs in-process with fake pools and socketpairs: tier-1 safe.
"""

from __future__ import annotations

import socket

import pytest

from repro.obs import metrics as obs_metrics
from repro.sampling import parallel, rpc, shm
from repro.storage.distribute import SnapshotCache


class _FakePool:
    """Stands in for a ProcessPoolExecutor in the warm registries."""

    def __init__(self) -> None:
        self.shutdowns = 0

    def shutdown(self, wait: bool = True) -> None:
        self.shutdowns += 1


class _ExplodingPool(_FakePool):
    """A parked pool whose worker processes already died."""

    def shutdown(self, wait: bool = True) -> None:
        super().shutdown(wait)
        raise OSError("worker processes are gone")


# --------------------------------------------------------------------------- #
# Warm-pool sweeps
# --------------------------------------------------------------------------- #
def test_fork_pool_sweep_survives_a_dead_pool():
    healthy, dead = _FakePool(), _ExplodingPool()
    parallel._WARM_POOLS[("test", "dead")] = (dead, None, ())
    parallel._WARM_POOLS[("test", "healthy")] = (healthy, None, ())
    parallel.shutdown_warm_pools()  # must not raise
    assert not parallel._WARM_POOLS
    assert dead.shutdowns == 1
    assert healthy.shutdowns == 1  # the corpse did not stop the sweep


def test_shm_pool_sweep_survives_a_dead_pool():
    healthy, dead = _FakePool(), _ExplodingPool()
    shm._WARM_SHM_POOLS[97] = dead
    shm._WARM_SHM_POOLS[98] = healthy
    shm.shutdown_warm_pools()  # must not raise
    assert not shm._WARM_SHM_POOLS
    assert dead.shutdowns == 1
    assert healthy.shutdowns == 1


def test_warm_pool_sweeps_are_idempotent():
    pool = _FakePool()
    parallel._WARM_POOLS[("test", "once")] = (pool, None, ())
    shm_pool = _FakePool()
    shm._WARM_SHM_POOLS[99] = shm_pool
    for _ in range(3):  # explicit drain + atexit re-run + paranoia
        parallel.shutdown_warm_pools()
        shm.shutdown_warm_pools()
    assert pool.shutdowns == 1
    assert shm_pool.shutdowns == 1


# --------------------------------------------------------------------------- #
# _serve_connection error discipline
# --------------------------------------------------------------------------- #
def test_conn_error_is_counted_and_contained(tmp_path):
    """A peer that vanishes pre-handshake is an expected, metered drop."""
    ours, theirs = socket.socketpair()
    theirs.close()  # the first challenge write dies with an OSError
    before = obs_metrics.counter("rpc_conn_errors_total").value
    rpc._serve_connection(ours, SnapshotCache(tmp_path), b"secret", 0.0, None)
    assert obs_metrics.counter("rpc_conn_errors_total").value == before + 1
    assert ours.fileno() == -1  # the connection was closed on the way out


def test_protocol_garbage_is_an_expected_conn_error(tmp_path):
    """Bytes failing the codec surface as RPCError: contained, not raised."""
    ours, theirs = socket.socketpair()
    with theirs:
        theirs.sendall(b"\x00" * 64)  # not a valid frame header
        theirs.shutdown(socket.SHUT_WR)
        before = obs_metrics.counter("rpc_conn_errors_total").value
        rpc._serve_connection(ours, SnapshotCache(tmp_path), b"secret", 0.0, None)
        assert obs_metrics.counter("rpc_conn_errors_total").value == before + 1


def test_genuine_bugs_propagate_out_of_serve_connection(tmp_path, monkeypatch):
    """The old bare ``except Exception: return`` is gone: a worker-side bug
    (anything outside OSError/RPCError) escapes to the caller."""

    def buggy_handshake(conn, cache, secret):
        raise RuntimeError("worker-side bug")

    monkeypatch.setattr(rpc, "_handshake_server", buggy_handshake)
    ours, theirs = socket.socketpair()
    with theirs:
        with pytest.raises(RuntimeError, match="worker-side bug"):
            rpc._serve_connection(ours, SnapshotCache(tmp_path), b"secret", 0.0, None)
