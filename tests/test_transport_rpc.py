"""RPC shard transport parity suite (real sockets, real worker processes).

Every test here spins actual ``repro worker`` subprocesses on loopback
sockets with tmpdir snapshot caches and checks the transport contract end
to end: for any shard count K ∈ {1, 2, 4, 7}, 1–3 localhost nodes and any
pipelining window, a :class:`SocketRPCTransport` run is **bit-identical**
to the :class:`SerialTransport` and :class:`ProcessPoolTransport`
executions of the same plan, on both storage backends — including when a
node is SIGKILLed mid-run and its tasks are reassigned, when an idle node
steals from a deliberately slowed one, when a worker joins mid-run through
the registration listener, and including the pinned golden trajectory.
Tests carry the ``rpc`` marker (dedicated CI leg) and a hard ``timeout`` so
a protocol hang fails instead of wedging the run.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from rpc_chaos import WorkerProcess

from repro.cli import main as cli_main
from repro.core.config import EvaluationConfig
from repro.evolving.reservoir_eval import ReservoirIncrementalEvaluator
from repro.evolving.stratified_eval import StratifiedIncrementalEvaluator
from repro.generators.datasets import LabelledKG, make_nell_like
from repro.generators.workload import UpdateWorkloadGenerator
from repro.sampling.parallel import PARALLEL_DESIGNS, ParallelSamplingExecutor
from repro.sampling.rpc import RPCTaskError, SocketRPCTransport
from repro.sampling.stratification import stratify_by_size

pytestmark = pytest.mark.rpc

_SHARD_COUNTS = (1, 2, 4, 7)
_CONFIG = EvaluationConfig(moe_target=0.06)


@pytest.fixture(scope="module")
def worker_pool(tmp_path_factory):
    """Three long-lived loopback worker nodes with persistent caches."""
    workers = [
        WorkerProcess(tmp_path_factory.mktemp(f"worker-{index}")) for index in range(3)
    ]
    yield workers
    for worker in workers:
        worker.stop()


@pytest.fixture(scope="module")
def labelled():
    data = make_nell_like(seed=0)
    graph = data.graph.to_columnar()
    return LabelledKG(graph, data.oracle), data.oracle.as_position_array(graph)


def _drive(run, units, round_size=50):
    while run.num_units < units:
        before = run.num_units
        run.step(min(round_size, units - run.num_units))
        if run.num_units == before:
            break
    return run.estimate(), run.cost_summary()


def _reference_result(graph, labels, design, *, workers, num_shards, seed, units=150, **kw):
    with ParallelSamplingExecutor(graph, workers=workers, num_shards=num_shards) as executor:
        return _drive(executor.run(design, labels, seed=seed, **kw), units)


def _rpc_result(
    graph, labels, design, *, nodes, num_shards, seed, units=150, transport=None, **kw
):
    transport = transport or SocketRPCTransport([node.address for node in nodes])
    with ParallelSamplingExecutor(
        graph, num_shards=num_shards, transport=transport
    ) as executor:
        return _drive(executor.run(design, labels, seed=seed, **kw), units)


@pytest.mark.timeout(300)
def test_rpc_matches_serial_and_pool_for_all_shard_and_node_counts(
    labelled, worker_pool
):
    data, labels = labelled
    for num_shards in _SHARD_COUNTS:
        serial = _reference_result(
            data.graph, labels, "twcs", workers=None, num_shards=num_shards, seed=51
        )
        pooled = _reference_result(
            data.graph, labels, "twcs", workers=2, num_shards=num_shards, seed=51
        )
        assert serial == pooled, num_shards
        for num_nodes in (1, 2, 3):
            rpc = _rpc_result(
                data.graph,
                labels,
                "twcs",
                nodes=worker_pool[:num_nodes],
                num_shards=num_shards,
                seed=51,
            )
            assert rpc == serial, (num_shards, num_nodes)


@pytest.mark.timeout(300)
@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)
@given(
    design=st.sampled_from(PARALLEL_DESIGNS),
    num_shards=st.sampled_from(_SHARD_COUNTS),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_rpc_parity_property(labelled, worker_pool, design, num_shards, seed):
    """Random (design, K, seed): RPC == serial on both storage backends."""
    data, labels = labelled
    memory = make_nell_like(seed=0)
    memory_labels = memory.oracle.as_position_array(memory.graph)
    serial = _reference_result(
        data.graph, labels, design, workers=None, num_shards=num_shards, seed=seed, units=100
    )
    rpc_columnar = _rpc_result(
        data.graph,
        labels,
        design,
        nodes=worker_pool[:2],
        num_shards=num_shards,
        seed=seed,
        units=100,
    )
    rpc_memory = _rpc_result(
        memory.graph,
        memory_labels,
        design,
        nodes=worker_pool[:2],
        num_shards=num_shards,
        seed=seed,
        units=100,
    )
    assert rpc_columnar == serial
    assert rpc_memory == serial


@pytest.mark.timeout(300)
def test_rpc_matches_golden_trajectory(labelled, worker_pool, golden):
    """The RPC trajectory reproduces the *pinned* serial golden, bit for bit."""
    data, labels = labelled
    transport = SocketRPCTransport([node.address for node in worker_pool[:2]])
    with ParallelSamplingExecutor(
        data.graph, num_shards=2, transport=transport
    ) as executor:
        run = executor.run("twcs", labels, seed=2026)
        trajectory = []
        for _ in range(4):
            run.step(40)
            estimate = run.estimate()
            cost = run.cost_summary()
            trajectory.append(
                {
                    "value": float(estimate.value),
                    "std_error": float(estimate.std_error),
                    "num_units": int(estimate.num_units),
                    "num_triples": int(estimate.num_triples),
                    "entities_identified": int(cost.entities_identified),
                    "triples_annotated": int(cost.triples_annotated),
                    "cost_seconds": float(cost.cost_seconds),
                }
            )
    golden.check("engine_twcs", trajectory)


@pytest.mark.timeout(300)
def test_rpc_stratified_and_neyman_parity(labelled, worker_pool):
    data, labels = labelled
    graph = data.graph
    strata = stratify_by_size(graph, num_strata=3)
    rows = [
        np.fromiter(
            (graph.entity_row(e) for e in stratum.entity_ids),
            dtype=np.int64,
            count=stratum.num_entities,
        )
        for stratum in strata
    ]
    for allocation in ("proportional", "neyman"):
        serial = _reference_result(
            graph,
            labels,
            "twcs",
            workers=None,
            num_shards=4,
            seed=23,
            strata=rows,
            allocation=allocation,
        )
        rpc = _rpc_result(
            graph,
            labels,
            "twcs",
            nodes=worker_pool[:2],
            num_shards=4,
            seed=23,
            strata=rows,
            allocation=allocation,
        )
        assert rpc == serial, allocation


@pytest.mark.timeout(300)
def test_rpc_node_drop_mid_run_reassigns_and_stays_bit_identical(labelled, tmp_path):
    """SIGKILL one of two nodes mid-run: tasks reassign, trajectory unchanged.

    Every task carries the exact per-shard RNG state it resumes from, so the
    surviving node re-executes the dropped node's tasks identically — the
    drop changes *where* work ran, never *what* was drawn.
    """
    data, labels = labelled
    serial_executor = ParallelSamplingExecutor(data.graph, workers=None, num_shards=4)
    serial_run = serial_executor.run("twcs", labels, seed=77)

    victims = [WorkerProcess(tmp_path / "drop-a"), WorkerProcess(tmp_path / "drop-b")]
    try:
        transport = SocketRPCTransport([node.address for node in victims])
        with ParallelSamplingExecutor(
            data.graph, num_shards=4, transport=transport
        ) as executor:
            run = executor.run("twcs", labels, seed=77)
            for _ in range(2):  # both nodes healthy
                serial_run.step(40)
                run.step(40)
            victims[0].kill()  # hard drop mid-run
            for _ in range(2):  # survivor drains the reassigned tasks
                serial_run.step(40)
                run.step(40)
            assert run.estimate() == serial_run.estimate()
            assert run.cost_summary() == serial_run.cost_summary()
            stats = transport.stats()
            assert stats["live_nodes"] == 1
            # The survivor executed work in every round, including post-drop.
            survivor = next(n for n in stats["nodes"] if not n["dead"])
            assert survivor["tasks_executed"] >= 4
    finally:
        for victim in victims:
            victim.stop()
        serial_executor.close()


@pytest.mark.timeout(300)
def test_snapshot_is_content_addressed_and_shipped_once(labelled, tmp_path):
    data, labels = labelled
    worker = WorkerProcess(tmp_path / "cache-node")
    try:
        for attempt in range(2):
            transport = SocketRPCTransport([worker.address])
            with ParallelSamplingExecutor(
                data.graph, num_shards=2, transport=transport
            ) as executor:
                _drive(executor.run("twcs", labels, seed=3), 60)
                shipped = transport.stats()["snapshots_shipped"]
            # First master ships the CSR once; every later run finds it cached.
            assert shipped == (1 if attempt == 0 else 0), attempt
        digests = [d for d in os.listdir(worker.cache_dir) if not d.startswith(".")]
        assert len(digests) == 1
    finally:
        worker.stop()


@pytest.mark.timeout(300)
@pytest.mark.parametrize(
    "cls", [StratifiedIncrementalEvaluator, ReservoirIncrementalEvaluator]
)
def test_evolving_rpc_trajectory_matches_sharded_serial(worker_pool, cls):
    data = make_nell_like(seed=0)
    base = LabelledKG(data.graph.to_columnar(), data.oracle)
    workload = UpdateWorkloadGenerator(base, seed=5)
    updates = list(workload.generate_sequence(2, 120, 0.8))

    def trajectory(**extra):
        evaluator = cls(base, config=_CONFIG, seed=13, surface="position", **extra)
        try:
            evaluator.evaluate_base()
            for batch, batch_oracle in updates:
                evaluator.apply_update(batch, batch_oracle)
            return [
                (e.batch_id, e.accuracy, e.report.margin_of_error, e.cumulative_cost_seconds)
                for e in evaluator.history
            ]
        finally:
            evaluator.close()

    serial = trajectory(workers=0, num_shards=3)
    rpc = trajectory(
        transport=SocketRPCTransport([node.address for node in worker_pool[:2]]),
        num_shards=3,
    )
    assert rpc == serial


@pytest.mark.timeout(300)
def test_cli_evaluate_rpc_matches_serial(worker_pool, capsys):
    outputs = []
    for argv in (
        ["evaluate", "--dataset", "nell", "--workers", "0", "--shards", "3", "--seed", "3"],
        [
            "evaluate",
            "--dataset",
            "nell",
            "--transport",
            "rpc",
            "--nodes",
            ",".join(node.address for node in worker_pool[:2]),
            "--shards",
            "3",
            "--seed",
            "3",
        ],
    ):
        assert cli_main(argv) == 0
        out = capsys.readouterr().out
        outputs.append(
            out.replace("transport=serial", "transport=X").replace(
                "transport=rpc[2 nodes]", "transport=X"
            )
        )
    assert outputs[0] == outputs[1]


@pytest.mark.timeout(120)
def test_worker_survives_a_master_that_vanishes_mid_exchange(labelled, tmp_path):
    """An abruptly disconnected master must not kill the worker process."""
    import socket as socket_module

    from repro.sampling.rpc import PROTOCOL_VERSION, send_message

    data, labels = labelled
    worker = WorkerProcess(tmp_path / "rude-node")
    try:
        host, port = worker.address.rsplit(":", 1)
        # Rude master #1: sends a request and slams the connection shut
        # without ever reading the reply (worker's send may hit EPIPE/RST).
        sock = socket_module.create_connection((host, int(port)), timeout=10)
        send_message(sock, {"op": "hello", "version": PROTOCOL_VERSION})
        sock.close()
        # Rude master #2: half a length prefix, then gone.
        sock = socket_module.create_connection((host, int(port)), timeout=10)
        sock.sendall(b"\x00\x00\x00")
        sock.close()
        assert worker.proc.poll() is None
        # A well-behaved master still gets bit-identical service afterwards.
        rpc = _rpc_result(
            data.graph, labels, "twcs", nodes=[worker], num_shards=2, seed=9, units=40
        )
        serial = _reference_result(
            data.graph, labels, "twcs", workers=None, num_shards=2, seed=9, units=40
        )
        assert rpc == serial
    finally:
        worker.stop()


@pytest.mark.timeout(300)
def test_pipelined_windows_match_serial_under_skewed_node_delays(labelled, tmp_path):
    """Windows 1/2/8 with one deliberately slow node: bit-identical on both
    backends.  Pipelining and work stealing change *where and when* tasks
    run, never what they draw."""
    data, labels = labelled
    memory = make_nell_like(seed=0)
    memory_labels = memory.oracle.as_position_array(memory.graph)
    fast = WorkerProcess(tmp_path / "win-fast")
    slow = WorkerProcess(tmp_path / "win-slow", task_delay=0.02)
    try:
        serial = _reference_result(
            data.graph, labels, "twcs", workers=None, num_shards=7, seed=29, units=100
        )
        for window in (1, 2, 8):
            rpc_columnar = _rpc_result(
                data.graph,
                labels,
                "twcs",
                nodes=[fast, slow],
                num_shards=7,
                seed=29,
                units=100,
                transport=SocketRPCTransport([fast.address, slow.address], window=window),
            )
            assert rpc_columnar == serial, window
            rpc_memory = _rpc_result(
                memory.graph,
                memory_labels,
                "twcs",
                nodes=[fast, slow],
                num_shards=7,
                seed=29,
                units=100,
                transport=SocketRPCTransport([fast.address, slow.address], window=window),
            )
            assert rpc_memory == serial, window
    finally:
        fast.stop()
        slow.stop()


@pytest.mark.timeout(180)
def test_idle_node_steals_from_a_slow_one_without_perturbing_the_run(labelled, tmp_path):
    """A node stuck behind a large per-task delay gets its window drained by
    the idle node; both stay alive and the trajectory is unchanged."""
    data, labels = labelled
    slow = WorkerProcess(tmp_path / "steal-slow", task_delay=0.4)
    fast = WorkerProcess(tmp_path / "steal-fast")
    try:
        with ParallelSamplingExecutor(data.graph, workers=None, num_shards=4) as serial_ex:
            serial_run = serial_ex.run("twcs", labels, seed=41)
            serial_run.step(40)
            serial_estimate = serial_run.estimate()
            serial_cost = serial_run.cost_summary()
        transport = SocketRPCTransport([slow.address, fast.address], window=4)
        with ParallelSamplingExecutor(
            data.graph, num_shards=4, transport=transport
        ) as executor:
            run = executor.run("twcs", labels, seed=41)
            run.step(40)
            assert run.estimate() == serial_estimate
            assert run.cost_summary() == serial_cost
            stats = transport.stats()
            assert stats["tasks_stolen"] >= 1
            assert stats["live_nodes"] == 2
    finally:
        slow.stop()
        fast.stop()


@pytest.mark.timeout(300)
def test_late_joining_worker_registers_and_receives_work(labelled, tmp_path):
    """Elastic membership: a `repro worker --join` node registering after a
    completed round is attached (content-addressed CSR catch-up) and handed
    work, with the final trajectory bit-identical to the serial reference —
    on both storage backends, with 3 loopback workers in play."""
    data, labels = labelled
    memory = make_nell_like(seed=0)
    memory_labels = memory.oracle.as_position_array(memory.graph)
    for graph, label_array, tag in (
        (data.graph, labels, "columnar"),
        (memory.graph, memory_labels, "memory"),
    ):
        with ParallelSamplingExecutor(graph, workers=None, num_shards=4) as serial_ex:
            serial_run = serial_ex.run("twcs", label_array, seed=67)
            for _ in range(6):
                serial_run.step(30)
            serial_estimate = serial_run.estimate()
            serial_cost = serial_run.cost_summary()

        initial = [
            WorkerProcess(tmp_path / f"join-init-{tag}-{index}") for index in range(2)
        ]
        joiner = None
        try:
            transport = SocketRPCTransport(
                [node.address for node in initial], join_address="127.0.0.1:0"
            )
            assert transport.join_address is not None
            with ParallelSamplingExecutor(
                graph, num_shards=4, transport=transport
            ) as executor:
                run = executor.run("twcs", label_array, seed=67)
                for _ in range(2):  # ≥1 completed round before the join
                    run.step(30)
                joiner = WorkerProcess(
                    tmp_path / f"join-late-{tag}", join=transport.join_address
                )
                time.sleep(0.5)  # let the join land in the listener backlog
                for _ in range(4):
                    run.step(30)
                assert run.estimate() == serial_estimate
                assert run.cost_summary() == serial_cost
                stats = transport.stats()
                joined = [node for node in stats["nodes"] if node["joined"]]
                assert len(joined) == 1
                # The joiner caught up on the CSR index (shipped exactly once
                # to it) and actually executed work.
                assert joined[0]["snapshots_shipped"] == 1
                assert joined[0]["tasks_executed"] >= 1
                assert stats["live_nodes"] == 3
        finally:
            for node in initial:
                node.stop()
            if joiner is not None:
                joiner.stop()


@pytest.mark.timeout(120)
def test_close_is_idempotent_and_tolerates_nodes_dead_after_last_result(labelled, tmp_path):
    """Regression: close() must survive the shutdown race with a node that
    died right after delivering its last result — and stay a no-op when
    called again."""
    data, labels = labelled
    workers = [WorkerProcess(tmp_path / f"close-{index}") for index in range(2)]
    transport = SocketRPCTransport([worker.address for worker in workers])
    try:
        executor = ParallelSamplingExecutor(data.graph, num_shards=2, transport=transport)
        run = executor.run("twcs", labels, seed=11)
        run.step(40)
        # Both nodes die *after* their last result, before close(): the
        # goodbye hits reset/closed sockets on every node.
        for worker in workers:
            worker.kill()
        time.sleep(0.1)
        executor.close()  # must not raise
        executor.close()  # idempotent
        transport.close()  # and again at the transport level
    finally:
        for worker in workers:
            worker.stop()


@pytest.mark.timeout(120)
def test_remote_task_failure_raises_instead_of_retrying(labelled, tmp_path):
    """A task that *raises* on the worker is a bug, not a node failure."""
    from repro.sampling.parallel import ShardSource, ShardTask

    data, labels = labelled
    worker = WorkerProcess(tmp_path / "err-node")
    try:
        transport = SocketRPCTransport([worker.address])
        transport.bind(
            np.asarray(data.graph.backend.csr_arrays()[0], dtype=np.int64),
            data.graph.backend.csr_arrays()[1],
        )
        bad_task = ShardTask(
            index=0,
            design="definitely-not-a-design",
            source=ShardSource(kind="range", lo=0, hi=1),
            count=1,
            cap=5,
            rng_state=np.random.default_rng(0).bit_generator.state,
            perm_seed=None,
            cursor=0,
        )
        with pytest.raises(RPCTaskError, match="definitely-not-a-design"):
            transport.execute([bad_task])
        transport.close()  # free the node before the next master connects
        # The node survives the failed task and still serves good work.
        result = _rpc_result(
            data.graph, labels, "twcs", nodes=[worker], num_shards=2, seed=9, units=40
        )
        serial = _reference_result(
            data.graph, labels, "twcs", workers=None, num_shards=2, seed=9, units=40
        )
        assert result == serial
    finally:
        worker.stop()
