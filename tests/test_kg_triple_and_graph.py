"""Unit tests for the KG data model: Triple and KnowledgeGraph."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kg.graph import EntityCluster, KnowledgeGraph
from repro.kg.triple import Triple


class TestTriple:
    def test_fields_and_tuple(self):
        triple = Triple("e1", "bornIn", "NYC")
        assert triple.subject == "e1"
        assert triple.predicate == "bornIn"
        assert triple.obj == "NYC"
        assert triple.as_tuple() == ("e1", "bornIn", "NYC")

    def test_equality_ignores_entity_object_flag(self):
        plain = Triple("e1", "knows", "e2")
        flagged = Triple("e1", "knows", "e2", is_entity_object=True)
        assert plain == flagged
        assert hash(plain) == hash(flagged)

    def test_with_subject_returns_new_triple(self):
        triple = Triple("e1", "bornIn", "NYC", is_entity_object=False)
        moved = triple.with_subject("e2")
        assert moved.subject == "e2"
        assert moved.predicate == triple.predicate
        assert moved.obj == triple.obj
        assert triple.subject == "e1"

    def test_is_immutable(self):
        triple = Triple("e1", "bornIn", "NYC")
        with pytest.raises(AttributeError):
            triple.subject = "e2"  # type: ignore[misc]

    def test_usable_as_dict_key(self):
        labels = {Triple("e1", "p", "o"): True}
        assert labels[Triple("e1", "p", "o")] is True


class TestKnowledgeGraphBasics:
    def test_empty_graph(self):
        graph = KnowledgeGraph()
        assert graph.num_triples == 0
        assert graph.num_entities == 0
        assert graph.average_cluster_size == 0.0
        assert list(graph) == []

    def test_add_and_membership(self):
        graph = KnowledgeGraph()
        triple = Triple("e1", "p", "o")
        assert graph.add(triple) is True
        assert triple in graph
        assert Triple("e2", "p", "o") not in graph

    def test_duplicate_insertion_ignored(self):
        graph = KnowledgeGraph()
        triple = Triple("e1", "p", "o")
        assert graph.add(triple) is True
        assert graph.add(triple) is False
        assert graph.num_triples == 1

    def test_add_all_counts_new_only(self):
        graph = KnowledgeGraph([Triple("e1", "p", "o1")])
        added = graph.add_all([Triple("e1", "p", "o1"), Triple("e1", "p", "o2")])
        assert added == 1
        assert graph.num_triples == 2

    def test_len_and_iteration_order(self):
        triples = [Triple("e1", "p", f"o{i}") for i in range(5)]
        graph = KnowledgeGraph(triples)
        assert len(graph) == 5
        assert list(graph) == triples

    def test_triple_at(self):
        triples = [Triple("e1", "p", f"o{i}") for i in range(3)]
        graph = KnowledgeGraph(triples)
        assert graph.triple_at(1) == triples[1]


class TestEntityClusters:
    def test_cluster_contents(self, toy_graph):
        cluster = toy_graph.cluster("athlete_1")
        assert isinstance(cluster, EntityCluster)
        assert cluster.entity_id == "athlete_1"
        assert cluster.size == 4
        assert all(t.subject == "athlete_1" for t in cluster)

    def test_cluster_unknown_entity_raises(self, toy_graph):
        with pytest.raises(KeyError):
            toy_graph.cluster("unknown")

    def test_cluster_sizes_match_graph(self, toy_graph):
        sizes = toy_graph.cluster_sizes()
        assert sizes == {"athlete_1": 4, "athlete_2": 2, "movie_1": 6, "city_1": 1}
        assert sum(sizes.values()) == toy_graph.num_triples

    def test_cluster_size_array_alignment(self, toy_graph):
        array = toy_graph.cluster_size_array()
        expected = [toy_graph.cluster_size(e) for e in toy_graph.entity_ids]
        assert array.tolist() == expected

    def test_clusters_iterates_all_entities(self, toy_graph):
        entity_ids = {cluster.entity_id for cluster in toy_graph.clusters()}
        assert entity_ids == set(toy_graph.entity_ids)

    def test_average_cluster_size(self, toy_graph):
        assert toy_graph.average_cluster_size == pytest.approx(13 / 4)

    def test_has_entity(self, toy_graph):
        assert toy_graph.has_entity("movie_1")
        assert not toy_graph.has_entity("nope")


class TestSamplingHelpers:
    def test_sample_triples_without_replacement(self, toy_graph, rng):
        sample = toy_graph.sample_triples(13, rng)
        assert len(sample) == 13
        assert len(set(sample)) == 13

    def test_sample_triples_too_many_raises(self, toy_graph, rng):
        with pytest.raises(ValueError):
            toy_graph.sample_triples(14, rng)

    def test_sample_cluster_triples_capped_at_cluster_size(self, toy_graph, rng):
        sample = toy_graph.sample_cluster_triples("athlete_2", 10, rng)
        assert len(sample) == 2
        assert {t.subject for t in sample} == {"athlete_2"}

    def test_sample_cluster_triples_no_duplicates(self, toy_graph, rng):
        sample = toy_graph.sample_cluster_triples("movie_1", 6, rng)
        assert len(set(sample)) == 6

    def test_sampling_is_deterministic_under_seed(self, toy_graph):
        first = toy_graph.sample_triples(5, np.random.default_rng(7))
        second = toy_graph.sample_triples(5, np.random.default_rng(7))
        assert first == second


class TestDerivation:
    def test_subset_keeps_selected_clusters(self, toy_graph):
        subset = toy_graph.subset(["athlete_1", "city_1"])
        assert subset.num_entities == 2
        assert subset.num_triples == 5
        assert set(subset.entity_ids) == {"athlete_1", "city_1"}

    def test_subset_of_unknown_entities_is_empty(self, toy_graph):
        subset = toy_graph.subset(["nope"])
        assert subset.num_triples == 0

    def test_random_triple_subset_size(self, toy_graph, rng):
        subset = toy_graph.random_triple_subset(0.5, rng)
        assert subset.num_triples == round(0.5 * toy_graph.num_triples)
        assert all(t in toy_graph for t in subset)

    def test_random_triple_subset_invalid_fraction(self, toy_graph, rng):
        with pytest.raises(ValueError):
            toy_graph.random_triple_subset(0.0, rng)
        with pytest.raises(ValueError):
            toy_graph.random_triple_subset(1.5, rng)

    def test_copy_is_independent(self, toy_graph):
        clone = toy_graph.copy()
        clone.add(Triple("new_entity", "p", "o"))
        assert clone.num_triples == toy_graph.num_triples + 1
        assert not toy_graph.has_entity("new_entity")
