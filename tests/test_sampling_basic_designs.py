"""Unit tests for SampleUnit/Estimate and the SRS, RCS and WCS designs."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.cost.annotator import SimulatedAnnotator
from repro.sampling.base import Estimate, SampleUnit
from repro.sampling.rcs import RandomClusterDesign
from repro.sampling.srs import SimpleRandomDesign
from repro.sampling.wcs import WeightedClusterDesign


def annotate_and_update(design, units, oracle):
    """Label the units directly from the oracle and feed them to the design."""
    for unit in units:
        labels = {triple: oracle.label(triple) for triple in unit.triples}
        design.update(unit, labels)


class TestEstimate:
    def test_margin_of_error_and_interval(self):
        estimate = Estimate(value=0.9, std_error=0.02, num_units=50, num_triples=50)
        assert estimate.margin_of_error(0.95) == pytest.approx(1.96 * 0.02, abs=1e-3)
        interval = estimate.confidence_interval(0.95)
        assert interval.lower < 0.9 < interval.upper
        assert estimate.satisfies(0.05, 0.95)
        assert not estimate.satisfies(0.01, 0.95)

    def test_infinite_std_error_never_satisfies(self):
        estimate = Estimate(value=0.5, std_error=math.inf, num_units=1, num_triples=1)
        assert math.isinf(estimate.margin_of_error(0.95))
        assert not estimate.satisfies(0.5, 0.95)
        interval = estimate.confidence_interval(0.95)
        assert (interval.lower, interval.upper) == (0.0, 1.0)

    def test_sample_unit_counts(self, toy_graph):
        cluster = toy_graph.cluster("athlete_1")
        unit = SampleUnit(triples=cluster.triples, entity_id="athlete_1", cluster_size=4)
        assert unit.num_triples == 4


class TestSimpleRandomDesign:
    def test_draw_without_replacement(self, toy_kg):
        graph, _ = toy_kg
        design = SimpleRandomDesign(graph, seed=0)
        units = design.draw(13)
        triples = [unit.triples[0] for unit in units]
        assert len(set(triples)) == 13
        assert design.exhausted
        assert design.draw(5) == []

    def test_draw_across_batches_never_repeats(self, toy_kg):
        graph, _ = toy_kg
        design = SimpleRandomDesign(graph, seed=1)
        seen = set()
        for _ in range(7):
            for unit in design.draw(2):
                assert unit.triples[0] not in seen
                seen.add(unit.triples[0])
        assert len(seen) == 13

    def test_census_estimate_is_exact(self, toy_kg):
        graph, oracle = toy_kg
        design = SimpleRandomDesign(graph, seed=0)
        annotate_and_update(design, design.draw(graph.num_triples), oracle)
        estimate = design.estimate()
        assert estimate.value == pytest.approx(oracle.true_accuracy(graph))
        assert estimate.num_units == graph.num_triples

    def test_estimate_before_sampling(self, toy_graph):
        design = SimpleRandomDesign(toy_graph, seed=0)
        estimate = design.estimate()
        assert estimate.num_units == 0
        assert math.isinf(estimate.std_error)

    def test_std_error_formula(self, toy_kg):
        graph, oracle = toy_kg
        design = SimpleRandomDesign(graph, seed=3)
        annotate_and_update(design, design.draw(10), oracle)
        estimate = design.estimate()
        p_hat = estimate.value
        assert estimate.std_error == pytest.approx(math.sqrt(p_hat * (1 - p_hat) / 10))

    def test_reset_clears_state(self, toy_kg):
        graph, oracle = toy_kg
        design = SimpleRandomDesign(graph, seed=0)
        annotate_and_update(design, design.draw(5), oracle)
        design.reset()
        assert design.estimate().num_units == 0
        assert not design.exhausted

    def test_negative_count_rejected(self, toy_graph):
        with pytest.raises(ValueError):
            SimpleRandomDesign(toy_graph, seed=0).draw(-1)


class TestRandomClusterDesign:
    def test_units_are_whole_clusters(self, toy_kg):
        graph, _ = toy_kg
        design = RandomClusterDesign(graph, seed=0)
        units = design.draw(4)
        assert {unit.entity_id for unit in units} == set(graph.entity_ids)
        for unit in units:
            assert unit.num_triples == graph.cluster_size(unit.entity_id)

    def test_draw_without_replacement_and_exhaustion(self, toy_kg):
        graph, _ = toy_kg
        design = RandomClusterDesign(graph, seed=0)
        assert len(design.draw(3)) == 3
        assert len(design.draw(3)) == 1
        assert design.exhausted

    def test_census_estimate_is_exact(self, toy_kg):
        graph, oracle = toy_kg
        design = RandomClusterDesign(graph, seed=5)
        annotate_and_update(design, design.draw(4), oracle)
        assert design.estimate().value == pytest.approx(oracle.true_accuracy(graph))

    def test_expansion_value_scaling(self, toy_kg):
        graph, oracle = toy_kg
        design = RandomClusterDesign(graph, seed=5)
        unit = next(u for u in design.draw(4) if u.entity_id == "athlete_2")
        labels = {t: oracle.label(t) for t in unit.triples}
        design.update(unit, labels)
        # athlete_2 has 2 correct triples; expansion value = (N/M)*tau = (4/13)*2.
        assert design.estimate().value == pytest.approx(4 / 13 * 2)

    def test_unbiased_over_many_trials(self, nell):
        estimates = []
        for seed in range(200):
            design = RandomClusterDesign(nell.graph, seed=seed)
            units = design.draw(40)
            annotate_and_update(design, units, nell.oracle)
            estimates.append(design.estimate().value)
        assert np.mean(estimates) == pytest.approx(nell.true_accuracy, abs=0.03)

    def test_reset(self, toy_kg):
        graph, oracle = toy_kg
        design = RandomClusterDesign(graph, seed=0)
        annotate_and_update(design, design.draw(2), oracle)
        design.reset()
        assert design.estimate().num_units == 0
        assert not design.exhausted


class TestWeightedClusterDesign:
    def test_rejects_empty_graph(self):
        from repro.kg.graph import KnowledgeGraph

        with pytest.raises(ValueError):
            WeightedClusterDesign(KnowledgeGraph(), seed=0)

    def test_units_are_whole_clusters_with_replacement(self, toy_kg):
        graph, _ = toy_kg
        design = WeightedClusterDesign(graph, seed=0)
        units = design.draw(50)
        assert len(units) == 50
        for unit in units:
            assert unit.num_triples == graph.cluster_size(unit.entity_id)

    def test_sampling_probabilities_proportional_to_size(self, toy_kg):
        graph, _ = toy_kg
        design = WeightedClusterDesign(graph, seed=1)
        draws = [unit.entity_id for unit in design.draw(4000)]
        frequency = {e: draws.count(e) / len(draws) for e in graph.entity_ids}
        for entity_id in graph.entity_ids:
            expected = graph.cluster_size(entity_id) / graph.num_triples
            assert frequency[entity_id] == pytest.approx(expected, abs=0.03)

    def test_estimator_is_mean_of_cluster_accuracies(self, toy_kg):
        graph, oracle = toy_kg
        design = WeightedClusterDesign(graph, seed=2)
        units = design.draw(10)
        annotate_and_update(design, units, oracle)
        expected = np.mean([oracle.cluster_accuracy(graph, unit.entity_id) for unit in units])
        assert design.estimate().value == pytest.approx(float(expected))

    def test_unbiased_over_many_trials(self, nell):
        estimates = []
        for seed in range(200):
            design = WeightedClusterDesign(nell.graph, seed=seed)
            annotate_and_update(design, design.draw(30), nell.oracle)
            estimates.append(design.estimate().value)
        assert np.mean(estimates) == pytest.approx(nell.true_accuracy, abs=0.02)

    def test_update_counts_triples(self, toy_kg):
        graph, oracle = toy_kg
        design = WeightedClusterDesign(graph, seed=0)
        units = design.draw(5)
        annotate_and_update(design, units, oracle)
        assert design.estimate().num_triples == sum(u.num_triples for u in units)


class TestDesignsWithAnnotator:
    def test_srs_with_simulated_annotator(self, toy_kg):
        graph, oracle = toy_kg
        design = SimpleRandomDesign(graph, seed=0)
        annotator = SimulatedAnnotator(oracle)
        units = design.draw(6)
        for unit in units:
            result = annotator.annotate_triples(unit.triples)
            design.update(unit, result.labels)
        assert design.estimate().num_units == 6
        assert annotator.total_triples_annotated == 6
