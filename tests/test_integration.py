"""Integration tests: full evaluation pipelines across modules, and the public API."""

from __future__ import annotations

import numpy as np

import repro
from repro import (
    BaselineEvolvingEvaluator,
    EvaluationConfig,
    EvolvingAccuracyMonitor,
    KGEvalBaseline,
    ReservoirIncrementalEvaluator,
    SimpleRandomDesign,
    SimulatedAnnotator,
    StaticEvaluator,
    StratifiedIncrementalEvaluator,
    StratifiedTWCSDesign,
    TwoStageWeightedClusterDesign,
    UpdateWorkloadGenerator,
    evaluate_accuracy,
    make_movie_like,
    make_nell_like,
    stratify_by_size,
)


class TestPublicAPI:
    def test_all_exports_resolvable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_quickstart_docstring_flow(self):
        data = make_nell_like(seed=0)
        design = TwoStageWeightedClusterDesign(data.graph, second_stage_size=5, seed=0)
        report = evaluate_accuracy(design, SimulatedAnnotator(data.oracle), moe_target=0.05)
        assert 0.0 <= report.accuracy <= 1.0
        assert report.margin_of_error <= 0.05


class TestStaticPipeline:
    def test_coverage_of_confidence_intervals(self):
        """The 95% interval produced by the framework covers the true accuracy
        in roughly 95% of runs (allowing slack for the small trial count and
        the sequential stopping rule)."""
        data = make_nell_like(seed=1)
        covered = 0
        trials = 40
        for seed in range(trials):
            design = TwoStageWeightedClusterDesign(data.graph, second_stage_size=4, seed=seed)
            annotator = SimulatedAnnotator(data.oracle, seed=seed)
            report = evaluate_accuracy(design, annotator, moe_target=0.05)
            if report.confidence_interval.contains(data.true_accuracy):
                covered += 1
        assert covered / trials >= 0.8

    def test_twcs_cheaper_than_srs_on_clustered_kg(self):
        """The headline claim of the paper on a MOVIE-shaped KG (averaged)."""
        data = make_movie_like(seed=2, scale=0.01)
        srs_costs, twcs_costs = [], []
        for seed in range(5):
            srs_report = evaluate_accuracy(
                SimpleRandomDesign(data.graph, seed=seed),
                SimulatedAnnotator(data.oracle, seed=seed),
            )
            twcs_report = evaluate_accuracy(
                TwoStageWeightedClusterDesign(data.graph, second_stage_size=5, seed=seed),
                SimulatedAnnotator(data.oracle, seed=seed),
            )
            srs_costs.append(srs_report.annotation_cost_hours)
            twcs_costs.append(twcs_report.annotation_cost_hours)
        assert np.mean(twcs_costs) < np.mean(srs_costs)

    def test_stratified_design_in_full_pipeline(self):
        data = make_movie_like(seed=3, scale=0.005)
        strata = stratify_by_size(data.graph, num_strata=3)
        design = StratifiedTWCSDesign(data.graph, strata, second_stage_size=5, seed=0)
        annotator = SimulatedAnnotator(data.oracle, seed=0)
        report = StaticEvaluator(design, annotator, EvaluationConfig(moe_target=0.05)).run()
        assert report.satisfied
        assert abs(report.accuracy - data.true_accuracy) < 0.1

    def test_kgeval_and_twcs_comparable_estimates(self):
        data = make_nell_like(seed=4)
        kgeval = KGEvalBaseline(data.graph, SimulatedAnnotator(data.oracle), coverage_target=0.85)
        kgeval_result = kgeval.run()
        twcs_report = evaluate_accuracy(
            TwoStageWeightedClusterDesign(data.graph, 5, seed=0),
            SimulatedAnnotator(data.oracle, seed=0),
        )
        assert abs(kgeval_result.estimated_accuracy - twcs_report.accuracy) < 0.2


class TestEvolvingPipeline:
    def test_full_monitoring_run_all_methods(self):
        movie = make_movie_like(seed=5, scale=0.004)
        base = UpdateWorkloadGenerator.split_base(movie, 0.6, seed=5)
        results = {}
        for name, evaluator in (
            ("baseline", BaselineEvolvingEvaluator(base, seed=0)),
            ("rs", ReservoirIncrementalEvaluator(base, seed=0)),
            ("ss", StratifiedIncrementalEvaluator(base, seed=0)),
        ):
            monitor = EvolvingAccuracyMonitor(evaluator)
            workload = UpdateWorkloadGenerator(base, seed=17)
            records = monitor.run(workload.generate_sequence(3, base.graph.num_triples // 5, 0.7))
            results[name] = records
        for records in results.values():
            assert len(records) == 4
            assert all(record.estimation_error < 0.15 for record in records)
        # Total cost ordering: incremental methods cheaper than the baseline.
        total = {name: records[-1].cumulative_cost_hours for name, records in results.items()}
        assert total["ss"] < total["baseline"]
        assert total["rs"] < total["baseline"]

    def test_update_stream_with_mixed_quality(self):
        movie = make_movie_like(seed=6, scale=0.004)
        base = UpdateWorkloadGenerator.split_base(movie, 0.6, seed=6)
        evaluator = StratifiedIncrementalEvaluator(base, seed=1)
        monitor = EvolvingAccuracyMonitor(evaluator)
        monitor.evaluate_base()
        workload = UpdateWorkloadGenerator(base, seed=23)
        for accuracy in (0.9, 0.3, 0.9):
            batch, oracle = workload.generate_batch(base.graph.num_triples // 4, accuracy)
            monitor.apply_update(batch, oracle)
        truths = [record.true_accuracy for record in monitor.records]
        estimates = [record.estimated_accuracy for record in monitor.records]
        # The bad batch (30% accurate) must show up both in the truth and in
        # the tracked estimate.
        assert truths[2] < truths[1]
        assert estimates[2] < estimates[1]
