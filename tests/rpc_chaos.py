"""Fault-injection helpers for the RPC shard transport test suite.

Not a test module — shared machinery imported by ``test_transport_rpc.py``
and ``test_rpc_chaos.py``:

* :class:`WorkerProcess` — one real ``repro worker`` subprocess (listen or
  ``--join`` mode, optional shared secret and per-task delay), with its
  stdout/stderr teed into a log directory so CI can upload worker logs as
  artifacts when a scenario fails (``REPRO_RPC_LOG_DIR``).  Every worker
  also writes structured JSON-lines logs (``<name>.jsonl``, debug level)
  and exports a metrics snapshot on orderly shutdown (``<name>.metrics.json``)
  into the same directory; :meth:`WorkerProcess.structured_events` parses
  the log back for scenario assertions.
* :class:`ChaosProxy` — a frame-aware TCP proxy wedged between master and
  worker.  Because the wire protocol is a schema'd codec, the proxy can
  *parse* every frame it forwards and inject faults at precise protocol
  moments: truncate the n-th result frame mid-byte, delay or duplicate
  result frames, or flip a byte inside the n-th task frame (which the
  worker's CRC check must catch).
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.sampling import wire
from repro.sampling.rpc import _recv_exactly

_SRC = Path(__file__).resolve().parents[1] / "src"


def _log_dir(fallback: Path) -> Path:
    configured = os.environ.get("REPRO_RPC_LOG_DIR")
    path = Path(configured) if configured else fallback
    path.mkdir(parents=True, exist_ok=True)
    return path


class WorkerProcess:
    """One spawned ``repro worker`` subprocess and its bound address.

    ``listen`` mode (default) binds an ephemeral loopback port and exposes
    it as :attr:`address`.  ``join="host:port"`` dials a master's
    registration listener instead (:attr:`address` stays ``None``).  Output
    is teed to ``<log dir>/<name>.log``.
    """

    def __init__(
        self,
        cache_dir: Path,
        *,
        join: str | None = None,
        secret: str | None = None,
        task_delay: float = 0.0,
        name: str | None = None,
    ) -> None:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(_SRC) + os.pathsep + env.get("PYTHONPATH", "")
        self.cache_dir = Path(cache_dir)
        self.name = name or self.cache_dir.name
        argv = [sys.executable, "-m", "repro", "worker", "--base-dir", str(cache_dir)]
        if join is not None:
            argv += ["--join", join]
        else:
            argv += ["--listen", "127.0.0.1:0"]
        if secret is not None:
            secret_path = self.cache_dir.parent / f"{self.cache_dir.name}.secret"
            secret_path.write_text(secret)
            argv += ["--secret-file", str(secret_path)]
        if task_delay:
            argv += ["--task-delay", str(task_delay)]
        log_dir = _log_dir(self.cache_dir.parent)
        # Always-on observability: structured logs land next to the teed
        # stdout/stderr (CI uploads the whole directory), and an orderly
        # shutdown exports the worker's metrics snapshot.
        self.json_log_path = log_dir / f"{self.name}.jsonl"
        self.metrics_path = log_dir / f"{self.name}.metrics.json"
        argv += [
            "--log-json",
            str(self.json_log_path),
            "--log-level",
            "debug",
            "--metrics-out",
            str(self.metrics_path),
        ]
        log_path = log_dir / f"{self.name}.log"
        self._log = open(log_path, "w")
        self.proc = subprocess.Popen(
            argv, stdout=subprocess.PIPE, stderr=self._log, text=True, env=env
        )
        assert self.proc.stdout is not None
        line = self.proc.stdout.readline()
        expected = "joining master" if join is not None else "listening on"
        if expected not in line:
            self.stop()
            raise RuntimeError(f"worker failed to start: {line!r} (log: {log_path})")
        self.address = None if join is not None else line.strip().rsplit(" ", 1)[-1]
        self._log.write(line)
        self._tee = threading.Thread(target=self._drain_stdout, daemon=True)
        self._tee.start()

    def _drain_stdout(self) -> None:
        assert self.proc.stdout is not None
        try:
            for line in self.proc.stdout:
                self._log.write(line)
                self._log.flush()
        except ValueError:  # log handle closed during stop()
            pass

    def structured_events(self, event: str | None = None) -> list[dict]:
        """Parse the worker's JSON-lines log, optionally filtered by event."""
        import json

        if not self.json_log_path.exists():
            return []
        records = []
        for line in self.json_log_path.read_text().splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:  # torn final line from a SIGKILL
                continue
            if event is None or record.get("event") == event:
                records.append(record)
        return records

    def kill(self) -> None:
        self.proc.kill()
        self.proc.wait(timeout=10)

    def stop(self) -> None:
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover - stubborn worker
                self.kill()
        try:
            self._log.close()
        except OSError:  # pragma: no cover
            pass


def _read_frame(sock: socket.socket) -> tuple[bytes, bytes] | None:
    """Read one complete wire frame; returns ``(header, payload)`` or None."""
    header = _recv_exactly(sock, wire.HEADER_SIZE)
    if header is None:
        return None
    length, _ = wire.parse_header(header)
    payload = _recv_exactly(sock, length) if length else b""
    if payload is None:
        raise ConnectionError("peer closed mid-frame")
    return header, payload


def _frame_op(payload: bytes) -> str | None:
    try:
        message = wire.loads(payload)
    except wire.WireError:
        return None
    return message.get("op") if isinstance(message, dict) else None


class ChaosProxy:
    """Frame-aware TCP proxy between a master and one worker node.

    Point the master's transport at :attr:`address`; the proxy forwards to
    ``upstream`` (a real worker) while injecting exactly one class of fault:

    ``delay_results``
        Sleep this many seconds before forwarding every ``result`` frame —
        a deterministically *slow* node.
    ``truncate_result_at=n``
        Forward only the first half of the n-th (1-based) ``result`` frame,
        then hard-close both directions — a node crashing mid-reply.
    ``duplicate_result_at=n``
        Forward the n-th ``result`` frame twice — a confused or replaying
        peer.
    ``corrupt_task_at=n``
        Flip one payload byte of the n-th ``task`` frame on its way to the
        worker — wire corruption the codec's CRC must catch.
    """

    def __init__(
        self,
        upstream: str,
        *,
        delay_results: float = 0.0,
        truncate_result_at: int | None = None,
        duplicate_result_at: int | None = None,
        corrupt_task_at: int | None = None,
    ) -> None:
        host, _, port = upstream.rpartition(":")
        self._upstream = (host, int(port))
        self.delay_results = delay_results
        self.truncate_result_at = truncate_result_at
        self.duplicate_result_at = duplicate_result_at
        self.corrupt_task_at = corrupt_task_at
        self.results_seen = 0
        self.tasks_seen = 0
        self._closed = False
        self._conns: list[socket.socket] = []
        self._server = socket.create_server(("127.0.0.1", 0))
        self._server.settimeout(0.2)
        self.address = "{}:{}".format(*self._server.getsockname()[:2])
        self._accept_thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._accept_thread.start()

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                client, _ = self._server.accept()
            except TimeoutError:
                continue
            except OSError:
                return
            try:
                upstream = socket.create_connection(self._upstream, timeout=10)
            except OSError:
                client.close()
                continue
            for sock in (client, upstream):
                sock.settimeout(60)
                self._conns.append(sock)
            threading.Thread(
                target=self._pump, args=(client, upstream, "task"), daemon=True
            ).start()
            threading.Thread(
                target=self._pump, args=(upstream, client, "result"), daemon=True
            ).start()

    def _pump(self, source: socket.socket, sink: socket.socket, direction: str) -> None:
        try:
            while True:
                frame = _read_frame(source)
                if frame is None:
                    break
                header, payload = frame
                op = _frame_op(payload)
                if direction == "result" and op == "result":
                    self.results_seen += 1
                    if self.delay_results:
                        time.sleep(self.delay_results)
                    if self.truncate_result_at == self.results_seen:
                        data = header + payload
                        sink.sendall(data[: max(1, len(data) // 2)])
                        break  # finally-close severs both directions
                    if self.duplicate_result_at == self.results_seen:
                        sink.sendall(header + payload)
                elif direction == "task" and op == "task":
                    self.tasks_seen += 1
                    if self.corrupt_task_at == self.tasks_seen:
                        payload = payload[:-1] + bytes([payload[-1] ^ 0xFF])
                sink.sendall(header + payload)
        except (OSError, ConnectionError):
            pass
        finally:
            for sock in (source, sink):
                try:
                    sock.close()
                except OSError:
                    pass

    def close(self) -> None:
        self._closed = True
        try:
            self._server.close()
        except OSError:
            pass
        for sock in self._conns:
            try:
                sock.close()
            except OSError:
                pass
