"""Tests for the command-line interface (``python -m repro``)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_evaluate_defaults(self):
        args = build_parser().parse_args(["evaluate"])
        assert args.command == "evaluate"
        assert args.dataset == "nell"
        assert args.design == "twcs"
        assert args.moe == 0.05
        assert args.second_stage_size == 5

    def test_global_options_accepted_after_subcommand(self):
        args = build_parser().parse_args(["evaluate", "--seed", "9", "--movie-scale", "0.02"])
        assert args.seed == 9
        assert args.movie_scale == 0.02

    def test_experiment_requires_known_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "nonsense"])

    def test_unknown_design_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evaluate", "--design", "magic"])

    def test_evaluate_rpc_hardening_flags(self):
        args = build_parser().parse_args(
            [
                "evaluate",
                "--transport",
                "rpc",
                "--nodes",
                "h1:1,h2:2",
                "--secret-file",
                "cluster.secret",
                "--rpc-window",
                "8",
                "--accept-joins",
                "127.0.0.1:0",
            ]
        )
        assert args.secret_file == "cluster.secret"
        assert args.rpc_window == 8
        assert args.accept_joins == "127.0.0.1:0"

    def test_monitor_shares_the_rpc_hardening_flags(self):
        args = build_parser().parse_args(["monitor", "--transport", "rpc", "--nodes", "h:1"])
        assert args.secret_file is None
        assert args.rpc_window == 4
        assert args.accept_joins is None

    def test_worker_join_mode_flags(self):
        args = build_parser().parse_args(
            [
                "worker",
                "--join",
                "master:7000",
                "--base-dir",
                "/tmp/cache",
                "--secret-file",
                "s",
                "--task-delay",
                "0.25",
            ]
        )
        assert args.join == "master:7000"
        assert args.listen is None
        assert args.secret_file == "s"
        assert args.task_delay == 0.25

    def test_worker_requires_exactly_one_of_listen_and_join(self):
        with pytest.raises(SystemExit):
            main(["worker", "--base-dir", "/tmp/cache"])
        with pytest.raises(SystemExit):
            main(["worker", "--listen", "a:1", "--join", "b:2", "--base-dir", "/tmp/cache"])


class TestCommands:
    def test_datasets_command(self, capsys):
        exit_code = main(["datasets", "--movie-scale", "0.004"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "NELL-like" in out
        assert "gold_accuracy" in out

    def test_evaluate_command_nell_twcs(self, capsys):
        exit_code = main(
            ["evaluate", "--dataset", "nell", "--design", "twcs", "--moe", "0.05", "--seed", "1"]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "estimated accuracy" in out
        assert "annotation cost" in out

    def test_evaluate_command_srs_on_yago(self, capsys):
        exit_code = main(["evaluate", "--dataset", "yago", "--design", "srs", "--seed", "2"])
        assert exit_code == 0
        assert "margin of error" in capsys.readouterr().out

    def test_evaluate_exit_code_reflects_unmet_target(self, capsys):
        # A 0.1% MoE on NELL with a WCS design cannot be met cheaply; cap the
        # evaluation through the tiny dataset itself: use rcs which exhausts
        # clusters and still fails the target.
        exit_code = main(
            ["evaluate", "--dataset", "nell", "--design", "rcs", "--moe", "0.011", "--seed", "0"]
        )
        assert exit_code in (0, 1)  # depends on whether the census satisfies the MoE

    def test_experiment_table4(self, capsys):
        exit_code = main(
            ["experiment", "table4", "--trials", "1", "--movie-scale", "0.004", "--seed", "0"]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "Table 4" in out
        assert "SRS" in out and "TWCS" in out

    def test_experiment_unknown_name_via_main(self, capsys):
        # Bypass argparse choices to exercise the guard inside _cmd_experiment.
        from repro import cli

        class FakeArgs:
            name = "does-not-exist"
            trials = 1
            seed = 0
            movie_scale = 0.004

        assert cli._cmd_experiment(FakeArgs()) == 2


class TestMonitorCommand:
    def test_monitor_columnar_runs_and_prints_trajectory(self, capsys):
        exit_code = main(
            [
                "monitor",
                "--dataset",
                "nell",
                "--backend",
                "columnar",
                "--batches",
                "2",
                "--seed",
                "1",
            ]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "position surface" in out
        assert "total-cost(h)" in out
        # One record line per state: base + 2 batches.
        assert len([line for line in out.splitlines() if line.startswith("    ")]) == 3

    def test_monitor_snapshot_save_then_resume(self, capsys, tmp_path):
        target = str(tmp_path / "base-snap")
        args = [
            "monitor",
            "--dataset",
            "nell",
            "--backend",
            "columnar",
            "--batches",
            "1",
            "--seed",
            "2",
            "--snapshot",
            target,
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "snapshot saved" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "reopened from" in second
        # Identical trajectory on resume: same seed, same persisted labels.
        def trajectory(text: str) -> str:
            return text[text.index("batch  estimate") :]

        assert trajectory(first) == trajectory(second)


class TestSnapshotEvaluateRoundTrip:
    def test_evaluate_from_labelled_snapshot(self, capsys, tmp_path):
        target = str(tmp_path / "nell.npz")
        assert main(["snapshot", "--dataset", "nell", "--out", target, "--with-labels"]) == 0
        capsys.readouterr()
        exit_code = main(["evaluate", "--from-snapshot", target, "--seed", "4"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "estimated accuracy" in out

    def test_evaluate_from_snapshot_without_labels_fails(self, capsys, tmp_path):
        target = str(tmp_path / "bare.npz")
        assert main(["snapshot", "--dataset", "nell", "--out", target]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit):
            main(["evaluate", "--from-snapshot", target])


class TestAllocationFlag:
    def test_serial_twcs_strat_honours_allocation(self):
        """--allocation must reach the in-process StratifiedTWCSDesign too."""
        from repro.cli import _build_design, _load_dataset

        data = _load_dataset("nell", 0, 0.01)
        design = _build_design("twcs-strat", data, 5, 0, allocation="neyman")
        assert design.allocation == "neyman"
        assert _build_design("twcs-strat", data, 5, 0).allocation == "proportional"

    def test_serial_twcs_strat_neyman_runs(self, capsys):
        code = main(
            [
                "evaluate",
                "--dataset",
                "nell",
                "--design",
                "twcs-strat",
                "--allocation",
                "neyman",
                "--seed",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "estimated accuracy" in out
