"""Tests for per-predicate granular evaluation and the multi-annotator task pool."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import EvaluationConfig
from repro.core.framework import StaticEvaluator
from repro.core.granular import GranularEvaluator, evaluate_by_predicate
from repro.cost.annotator import SimulatedAnnotator
from repro.cost.pool import AnnotationTaskPool, NoisyAnnotator
from repro.kg.graph import KnowledgeGraph
from repro.kg.triple import Triple
from repro.labels.oracle import LabelOracle
from repro.sampling.twcs import TwoStageWeightedClusterDesign


def build_predicate_kg() -> tuple[KnowledgeGraph, LabelOracle, dict[str, float]]:
    """A KG with two predicates of very different (known) accuracy."""
    rng = np.random.default_rng(0)
    graph = KnowledgeGraph(name="predicate-kg")
    labels: dict[Triple, bool] = {}
    accuracy_by_predicate = {"goodPredicate": 0.95, "badPredicate": 0.40}
    for entity_index in range(400):
        subject = f"e{entity_index}"
        for predicate, accuracy in accuracy_by_predicate.items():
            for fact_index in range(int(rng.integers(1, 4))):
                triple = Triple(subject, predicate, f"o_{predicate}_{entity_index}_{fact_index}")
                graph.add(triple)
                labels[triple] = bool(rng.random() < accuracy)
    return graph, LabelOracle(labels), accuracy_by_predicate


class TestGranularEvaluator:
    def test_per_predicate_estimates_separate_good_from_bad(self):
        graph, oracle, targets = build_predicate_kg()
        annotator = SimulatedAnnotator(oracle, seed=0)
        reports = evaluate_by_predicate(graph, annotator, moe_target=0.06, seed=0)
        assert set(reports) == set(targets)
        assert reports["goodPredicate"].accuracy > reports["badPredicate"].accuracy + 0.3
        for predicate, target in targets.items():
            assert reports[predicate].accuracy == pytest.approx(target, abs=0.12)

    def test_group_sizes_partition_the_graph(self):
        graph, oracle, _ = build_predicate_kg()
        annotator = SimulatedAnnotator(oracle, seed=1)
        reports = evaluate_by_predicate(graph, annotator, moe_target=0.08, seed=1)
        assert sum(r.num_triples_in_group for r in reports.values()) == graph.num_triples

    def test_small_groups_are_evaluated_exhaustively(self, toy_kg):
        graph, oracle = toy_kg
        annotator = SimulatedAnnotator(oracle, seed=0)
        evaluator = GranularEvaluator(graph, annotator, EvaluationConfig(moe_target=0.05))
        reports = evaluator.evaluate(lambda triple: triple.predicate)
        # Every toy predicate group is tiny, so all must be exhaustive and exact.
        assert all(report.exhaustive for report in reports.values())
        for label, report in reports.items():
            group_triples = [t for t in graph if t.predicate == label]
            exact = sum(oracle.label(t) for t in group_triples) / len(group_triples)
            assert report.accuracy == pytest.approx(exact)
            assert report.margin_of_error == 0.0

    def test_shared_session_saves_entity_identifications(self):
        graph, oracle, _ = build_predicate_kg()
        shared = SimulatedAnnotator(oracle, seed=2)
        GranularEvaluator(graph, shared, EvaluationConfig(moe_target=0.08), seed=2).evaluate(
            lambda t: t.predicate
        )
        # With a shared session the number of identified entities cannot exceed
        # the number of distinct subjects in the graph.
        assert shared.entities_identified <= graph.num_entities

    def test_combined_estimate_matches_overall_accuracy(self):
        graph, oracle, _ = build_predicate_kg()
        annotator = SimulatedAnnotator(oracle, seed=3)
        evaluator = GranularEvaluator(graph, annotator, EvaluationConfig(moe_target=0.06), seed=3)
        reports = evaluator.evaluate(lambda t: t.predicate)
        combined = GranularEvaluator.combine(reports)
        assert combined.value == pytest.approx(oracle.true_accuracy(graph), abs=0.08)
        assert combined.std_error >= 0.0

    def test_combine_empty(self):
        estimate = GranularEvaluator.combine({})
        assert estimate.num_units == 0


class TestNoisyAnnotator:
    def test_error_rate_validation(self, toy_oracle):
        with pytest.raises(ValueError):
            NoisyAnnotator(toy_oracle, label_error_rate=1.5)

    def test_zero_error_rate_matches_oracle(self, toy_kg):
        graph, oracle = toy_kg
        annotator = NoisyAnnotator(oracle, label_error_rate=0.0, seed=0)
        result = annotator.annotate_triples(list(graph))
        assert all(result.labels[t] == oracle.label(t) for t in graph)

    def test_error_rate_produces_flips(self, nell):
        annotator = NoisyAnnotator(nell.oracle, label_error_rate=0.3, seed=0)
        triples = list(nell.graph)[:500]
        result = annotator.annotate_triples(triples)
        flips = sum(result.labels[t] != nell.oracle.label(t) for t in triples)
        assert flips / len(triples) == pytest.approx(0.3, abs=0.08)

    def test_relabelling_is_consistent_within_session(self, toy_kg):
        graph, oracle = toy_kg
        annotator = NoisyAnnotator(oracle, label_error_rate=0.5, seed=0)
        first = annotator.annotate_triples(list(graph)).labels
        second = annotator.annotate_triples(list(graph)).labels
        assert first == second

    def test_cost_unaffected_by_label_noise(self, toy_kg):
        graph, oracle = toy_kg
        noisy = NoisyAnnotator(oracle, label_error_rate=0.4, seed=0)
        clean = SimulatedAnnotator(oracle, seed=0)
        noisy.annotate_triples(list(graph))
        clean.annotate_triples(list(graph))
        assert noisy.total_cost_seconds == pytest.approx(clean.total_cost_seconds)

    def test_label_and_cost_streams_are_independent(self, toy_oracle):
        """The same seed must spawn distinct child streams for label flips and
        timing noise (regression: both RNGs used to be seeded identically,
        silently correlating label errors with annotation cost)."""
        annotator = NoisyAnnotator(toy_oracle, label_error_rate=0.3, seed=123)
        assert not np.allclose(annotator._rng.random(8), annotator._label_rng.random(8))

    def test_label_flips_reproducible_under_fixed_seed(self, nell):
        triples = list(nell.graph)[:200]
        first = NoisyAnnotator(nell.oracle, label_error_rate=0.3, seed=7).annotate_triples(triples)
        second = NoisyAnnotator(nell.oracle, label_error_rate=0.3, seed=7).annotate_triples(triples)
        assert first.labels == second.labels

    def test_generator_seed_still_supported(self, toy_oracle):
        rng = np.random.default_rng(0)
        annotator = NoisyAnnotator(toy_oracle, label_error_rate=0.2, seed=rng)
        assert annotator._rng is rng
        assert annotator._label_rng is not rng


class TestAnnotationTaskPool:
    def test_validation(self, toy_oracle):
        with pytest.raises(ValueError):
            AnnotationTaskPool([])
        annotator = SimulatedAnnotator(toy_oracle)
        with pytest.raises(ValueError):
            AnnotationTaskPool([annotator], annotations_per_task=2)

    def test_build_tasks_groups_by_subject(self, toy_graph):
        tasks = AnnotationTaskPool.build_tasks(list(toy_graph))
        assert {task.entity_id for task in tasks} == set(toy_graph.entity_ids)
        assert sum(task.size for task in tasks) == toy_graph.num_triples

    def test_single_annotator_pool_matches_direct_annotation(self, toy_kg):
        graph, oracle = toy_kg
        direct = SimulatedAnnotator(oracle, seed=0)
        direct_result = direct.annotate_triples(list(graph))
        pool = AnnotationTaskPool([SimulatedAnnotator(oracle, seed=0)])
        pool_result = pool.annotate_triples(list(graph))
        assert pool_result.labels == direct_result.labels
        assert pool_result.cost_seconds == pytest.approx(direct_result.cost_seconds)

    def test_majority_vote_corrects_noisy_annotators(self, nell):
        """Three annotators with 20% error and majority vote recover most labels."""
        crew = [NoisyAnnotator(nell.oracle, label_error_rate=0.2, seed=i) for i in range(3)]
        pool = AnnotationTaskPool(crew, annotations_per_task=3)
        triples = list(nell.graph)[:300]
        voted = pool.annotate_triples(triples).labels
        voted_errors = sum(voted[t] != nell.oracle.label(t) for t in triples) / len(triples)
        single = NoisyAnnotator(nell.oracle, label_error_rate=0.2, seed=99)
        single_labels = single.annotate_triples(triples).labels
        single_errors = sum(single_labels[t] != nell.oracle.label(t) for t in triples) / len(
            triples
        )
        assert voted_errors < single_errors
        assert voted_errors < 0.15

    def test_multi_annotation_costs_more(self, toy_kg):
        graph, oracle = toy_kg
        single_pool = AnnotationTaskPool([SimulatedAnnotator(oracle, seed=0)])
        single_pool.annotate_triples(list(graph))
        triple_pool = AnnotationTaskPool(
            [SimulatedAnnotator(oracle, seed=i) for i in range(3)], annotations_per_task=3
        )
        triple_pool.annotate_triples(list(graph))
        assert triple_pool.total_cost_seconds == pytest.approx(3 * single_pool.total_cost_seconds)

    def test_round_robin_spreads_tasks(self, nell):
        crew = [SimulatedAnnotator(nell.oracle, seed=i) for i in range(3)]
        pool = AnnotationTaskPool(crew, annotations_per_task=1)
        pool.annotate_triples(list(nell.graph)[:90])
        workloads = [annotator.total_triples_annotated for annotator in crew]
        assert all(w > 0 for w in workloads)

    def test_pool_plugs_into_static_evaluator(self, nell):
        crew = [NoisyAnnotator(nell.oracle, label_error_rate=0.05, seed=i) for i in range(2)]
        pool = AnnotationTaskPool(crew, annotations_per_task=1)
        design = TwoStageWeightedClusterDesign(nell.graph, second_stage_size=5, seed=0)
        report = StaticEvaluator(design, pool, EvaluationConfig(moe_target=0.06)).run()
        assert report.satisfied
        assert abs(report.accuracy - nell.true_accuracy) < 0.15

    def test_reset_clears_everything(self, toy_kg):
        graph, oracle = toy_kg
        pool = AnnotationTaskPool([SimulatedAnnotator(oracle, seed=0)])
        pool.annotate_triples(list(graph))
        pool.reset()
        assert pool.total_cost_seconds == 0.0
        assert pool.records == []
        assert pool.labelled_triples == {}
