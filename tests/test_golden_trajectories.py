"""Golden-trajectory regression suite.

Every fixed-seed trajectory here is pinned bit-for-bit in
``tests/golden/*.json``: the sharded engine's per-round estimate/cost
series for all five cluster designs plus stratified TWCS (both allocation
rules), and the full evaluation histories of both incremental evolving
evaluators on the position surface.  A refactor — like swapping the shard
execution transport — can no longer silently shift numbers: any divergence
fails here with a pointer to ``--update-golden``, which rewrites the files
for an *intentional* trajectory change (review that diff!).

Floats survive the JSON round-trip exactly (``repr``-based shortest
serialisation), so ``==`` on the loaded payload is a bit-identity check.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import EvaluationConfig
from repro.evolving.reservoir_eval import ReservoirIncrementalEvaluator
from repro.evolving.stratified_eval import StratifiedIncrementalEvaluator
from repro.generators.datasets import LabelledKG, make_nell_like
from repro.generators.workload import UpdateWorkloadGenerator
from repro.sampling.parallel import PARALLEL_DESIGNS, ParallelSamplingExecutor
from repro.sampling.stratification import stratify_by_size

_SEED = 2026
_ROUNDS = 4
_ROUND_SIZE = 40


@pytest.fixture(scope="module")
def labelled():
    data = make_nell_like(seed=0)
    graph = data.graph.to_columnar()
    return LabelledKG(graph, data.oracle), data.oracle.as_position_array(graph)


@pytest.fixture(scope="module")
def labelled_sqlite():
    """The same labelled graph re-packed onto the out-of-core sqlite backend.

    Replaying the *same* golden files against this fixture is the storage
    contract made executable: a disk-resident backend may change where the
    bytes live, never what the engine draws.
    """
    data = make_nell_like(seed=0)
    graph = data.graph.to_columnar()
    labels = data.oracle.as_position_array(graph)
    return LabelledKG(graph.to_sqlite(), data.oracle), labels


def _strata_rows(graph) -> list[np.ndarray]:
    return [
        np.fromiter(
            (graph.entity_row(entity_id) for entity_id in stratum.entity_ids),
            dtype=np.int64,
            count=stratum.num_entities,
        )
        for stratum in stratify_by_size(graph, num_strata=3)
    ]


def _engine_trajectory(graph, labels, design, *, strata=None, allocation="proportional"):
    """Per-round (estimate, cost) series of a sharded serial engine run."""
    with ParallelSamplingExecutor(graph, workers=None, num_shards=2) as executor:
        run = executor.run(
            design, labels, seed=_SEED, strata=strata, allocation=allocation
        )
        trajectory = []
        for _ in range(_ROUNDS):
            run.step(_ROUND_SIZE)
            estimate = run.estimate()
            cost = run.cost_summary()
            trajectory.append(
                {
                    "value": float(estimate.value),
                    "std_error": float(estimate.std_error),
                    "num_units": int(estimate.num_units),
                    "num_triples": int(estimate.num_triples),
                    "entities_identified": int(cost.entities_identified),
                    "triples_annotated": int(cost.triples_annotated),
                    "cost_seconds": float(cost.cost_seconds),
                }
            )
        return trajectory


@pytest.mark.parametrize("design", PARALLEL_DESIGNS)
def test_engine_design_trajectory_is_pinned(labelled, golden, design):
    data, labels = labelled
    golden.check(
        f"engine_{design}", _engine_trajectory(data.graph, labels, design)
    )


@pytest.mark.parametrize("allocation", ["proportional", "neyman"])
def test_engine_stratified_trajectory_is_pinned(labelled, golden, allocation):
    data, labels = labelled
    golden.check(
        f"engine_twcs_strat_{allocation}",
        _engine_trajectory(
            data.graph,
            labels,
            "twcs",
            strata=_strata_rows(data.graph),
            allocation=allocation,
        ),
    )


@pytest.mark.parametrize("design", PARALLEL_DESIGNS)
def test_engine_design_trajectory_replays_on_sqlite(labelled_sqlite, golden, design):
    """The sqlite backend replays the columnar-pinned goldens bit-for-bit."""
    data, labels = labelled_sqlite
    golden.check(
        f"engine_{design}", _engine_trajectory(data.graph, labels, design)
    )


@pytest.mark.parametrize("allocation", ["proportional", "neyman"])
def test_engine_stratified_trajectory_replays_on_sqlite(labelled_sqlite, golden, allocation):
    data, labels = labelled_sqlite
    golden.check(
        f"engine_twcs_strat_{allocation}",
        _engine_trajectory(
            data.graph,
            labels,
            "twcs",
            strata=_strata_rows(data.graph),
            allocation=allocation,
        ),
    )


def _evolving_trajectory(base, cls):
    evaluator = cls(
        base, config=EvaluationConfig(moe_target=0.06), seed=_SEED, surface="position"
    )
    evaluator.evaluate_base()
    workload = UpdateWorkloadGenerator(base, seed=_SEED)
    for batch, batch_oracle in workload.generate_sequence(2, 120, 0.8):
        evaluator.apply_update(batch, batch_oracle)
    trajectory = [
        {
            "batch_id": entry.batch_id,
            "accuracy": float(entry.accuracy),
            "margin_of_error": float(entry.report.margin_of_error),
            "num_units": int(entry.report.num_units),
            "triples_annotated": int(entry.report.num_triples_annotated),
            "entities_identified": int(entry.report.num_entities_identified),
            "cumulative_cost_seconds": float(entry.cumulative_cost_seconds),
        }
        for entry in evaluator.history
    ]
    trajectory.append({"true_accuracy": float(evaluator.current_true_accuracy())})
    return trajectory


@pytest.mark.parametrize(
    "kind, cls",
    [("rs", ReservoirIncrementalEvaluator), ("ss", StratifiedIncrementalEvaluator)],
)
def test_evolving_trajectory_is_pinned(golden, kind, cls):
    data = make_nell_like(seed=0)
    base = LabelledKG(data.graph.to_columnar(), data.oracle)
    golden.check(f"evolving_{kind}", _evolving_trajectory(base, cls))


@pytest.mark.parametrize(
    "kind, cls",
    [("rs", ReservoirIncrementalEvaluator), ("ss", StratifiedIncrementalEvaluator)],
)
def test_evolving_trajectory_replays_via_sqlite_base(golden, kind, cls):
    """A base graph persisted to sqlite and re-derived as columns (the
    ``monitor --backend sqlite`` path) carries the identical pinned
    trajectory: the delta machinery sees bit-identical base columns."""
    data = make_nell_like(seed=0)
    base = LabelledKG(data.graph.to_columnar().to_sqlite().to_columnar(), data.oracle)
    golden.check(f"evolving_{kind}", _evolving_trajectory(base, cls))
