"""Unit tests for stratum construction and the stratified TWCS design."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.sampling.stratification import (
    Stratum,
    stratify_by_key,
    stratify_by_oracle_accuracy,
    stratify_by_size,
)
from repro.sampling.stratified import StratifiedTWCSDesign


def annotate_and_update(design, units, oracle):
    for unit in units:
        labels = {triple: oracle.label(triple) for triple in unit.triples}
        design.update(unit, labels)


class TestStratification:
    def test_strata_partition_all_entities(self, nell):
        strata = stratify_by_size(nell.graph, num_strata=3)
        all_entities = [e for stratum in strata for e in stratum.entity_ids]
        assert sorted(all_entities) == sorted(nell.graph.entity_ids)
        assert len(all_entities) == len(set(all_entities))

    def test_stratum_weights_sum_to_one(self, nell):
        strata = stratify_by_size(nell.graph, num_strata=4)
        assert sum(s.weight for s in strata) == pytest.approx(1.0)
        for stratum in strata:
            assert stratum.num_triples == sum(
                nell.graph.cluster_size(e) for e in stratum.entity_ids
            )

    def test_size_strata_order_clusters_by_size(self, nell):
        strata = stratify_by_size(nell.graph, num_strata=2)
        assert len(strata) == 2
        max_small = max(nell.graph.cluster_size(e) for e in strata[0].entity_ids)
        min_large = min(nell.graph.cluster_size(e) for e in strata[1].entity_ids)
        assert max_small <= min_large

    def test_single_stratum(self, toy_graph):
        strata = stratify_by_size(toy_graph, num_strata=1)
        assert len(strata) == 1
        assert strata[0].weight == pytest.approx(1.0)

    def test_invalid_num_strata(self, toy_graph):
        with pytest.raises(ValueError):
            stratify_by_size(toy_graph, num_strata=0)

    def test_oracle_stratification_groups_by_accuracy(self, toy_kg):
        graph, oracle = toy_kg
        strata = stratify_by_oracle_accuracy(graph, oracle.cluster_accuracies(graph), num_strata=4)
        # city_1 (accuracy 0) and athlete_2 (accuracy 1) must be in different strata.
        stratum_of = {}
        for index, stratum in enumerate(strata):
            for entity in stratum.entity_ids:
                stratum_of[entity] = index
        assert stratum_of["city_1"] != stratum_of["athlete_2"]

    def test_stratify_by_key_custom_boundaries(self, toy_graph):
        strata = stratify_by_key(
            toy_graph, toy_graph.cluster_size, boundaries=[1.5, 4.5], label_prefix="size"
        )
        by_label = {s.label: set(s.entity_ids) for s in strata}
        assert by_label["size<= 1.5"] == {"city_1"}
        assert by_label["size(1.5, 4.5]"] == {"athlete_1", "athlete_2"}
        assert by_label["size> 4.5"] == {"movie_1"}

    def test_stratum_dataclass_properties(self):
        stratum = Stratum(label="s", entity_ids=("a", "b"), num_triples=7, weight=0.5)
        assert stratum.num_entities == 2


class TestStratifiedTWCSDesign:
    def test_requires_non_empty_strata(self, toy_graph):
        empty = Stratum(label="empty", entity_ids=(), num_triples=0, weight=0.0)
        with pytest.raises(ValueError):
            StratifiedTWCSDesign(toy_graph, [empty], second_stage_size=2, seed=0)

    def test_draw_respects_strata_membership(self, nell):
        strata = stratify_by_size(nell.graph, num_strata=2)
        design = StratifiedTWCSDesign(nell.graph, strata, second_stage_size=3, seed=0)
        stratum_entities = [set(s.entity_ids) for s in design.strata]
        units = design.draw(20)
        assert len(units) == 20
        for unit in units:
            assert any(unit.entity_id in entities for entities in stratum_entities)

    def test_draw_allocates_to_every_stratum(self, nell):
        strata = stratify_by_size(nell.graph, num_strata=2)
        design = StratifiedTWCSDesign(nell.graph, strata, second_stage_size=3, seed=0)
        units = design.draw(30)
        hit = set()
        for unit in units:
            for index, stratum in enumerate(design.strata):
                if unit.entity_id in set(stratum.entity_ids):
                    hit.add(index)
        assert hit == {0, 1}

    def test_estimate_is_weighted_combination(self, toy_kg):
        graph, oracle = toy_kg
        strata = stratify_by_size(graph, num_strata=2)
        design = StratifiedTWCSDesign(graph, strata, second_stage_size=10, seed=1)
        units = design.draw(40)
        annotate_and_update(design, units, oracle)
        combined = design.estimate()
        expected = sum(
            stratum.weight * estimate.value
            for (stratum, estimate) in design.stratum_estimates()
        )
        assert combined.value == pytest.approx(expected)

    def test_estimate_undetermined_until_every_stratum_has_two_units(self, nell):
        strata = stratify_by_size(nell.graph, num_strata=2)
        design = StratifiedTWCSDesign(nell.graph, strata, second_stage_size=3, seed=0)
        units = design.draw(2)
        annotate_and_update(design, units, nell.oracle)
        assert math.isinf(design.estimate().std_error)

    def test_unbiasedness_over_trials(self, nell):
        estimates = []
        strata = stratify_by_size(nell.graph, num_strata=2)
        for seed in range(200):
            design = StratifiedTWCSDesign(nell.graph, strata, second_stage_size=4, seed=seed)
            annotate_and_update(design, design.draw(30), nell.oracle)
            estimates.append(design.estimate().value)
        assert np.mean(estimates) == pytest.approx(nell.true_accuracy, abs=0.02)

    def test_oracle_stratification_reduces_variance(self, movie_small):
        """With perfectly homogeneous strata the stratified estimator has lower
        spread than plain TWCS at the same number of cluster draws."""
        from repro.sampling.twcs import TwoStageWeightedClusterDesign

        graph, oracle = movie_small.graph, movie_small.oracle
        strata = stratify_by_oracle_accuracy(graph, oracle.cluster_accuracies(graph), 4)
        plain_estimates, stratified_estimates = [], []
        for seed in range(120):
            plain = TwoStageWeightedClusterDesign(graph, second_stage_size=5, seed=seed)
            annotate_and_update(plain, plain.draw(24), oracle)
            plain_estimates.append(plain.estimate().value)
            stratified = StratifiedTWCSDesign(graph, strata, second_stage_size=5, seed=seed)
            annotate_and_update(stratified, stratified.draw(24), oracle)
            stratified_estimates.append(stratified.estimate().value)
        assert np.std(stratified_estimates) < np.std(plain_estimates)

    def test_update_falls_back_to_entity_lookup(self, toy_kg):
        graph, oracle = toy_kg
        strata = stratify_by_size(graph, num_strata=2)
        design = StratifiedTWCSDesign(graph, strata, second_stage_size=2, seed=0)
        units = design.draw(4)
        # Simulate a unit whose identity mapping was lost (e.g. reconstructed
        # unit): update must still route it via its entity id.
        from repro.sampling.base import SampleUnit

        clone = SampleUnit(
            triples=units[0].triples,
            entity_id=units[0].entity_id,
            cluster_size=units[0].cluster_size,
        )
        labels = {t: oracle.label(t) for t in clone.triples}
        design.update(clone, labels)
        assert design.estimate().num_units == 1

    def test_update_unknown_entity_raises(self, toy_kg):
        graph, oracle = toy_kg
        strata = stratify_by_size(graph, num_strata=2)
        design = StratifiedTWCSDesign(graph, strata, second_stage_size=2, seed=0)
        from repro.kg.triple import Triple
        from repro.sampling.base import SampleUnit

        foreign = SampleUnit(triples=(Triple("ghost", "p", "o"),), entity_id="ghost")
        with pytest.raises(KeyError):
            design.update(foreign, {Triple("ghost", "p", "o"): True})

    def test_reset(self, nell):
        strata = stratify_by_size(nell.graph, num_strata=2)
        design = StratifiedTWCSDesign(nell.graph, strata, second_stage_size=3, seed=0)
        annotate_and_update(design, design.draw(10), nell.oracle)
        design.reset()
        assert design.estimate().num_units == 0
