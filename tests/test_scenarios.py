"""Tests for the declarative scenario registry (spec, runner, report, CLI).

Statistical behaviour (does coverage actually land inside the Wilson band at
scale) lives in ``test_scenario_coverage.py``; this file covers the machinery:
strict pack parsing, all four scenario kinds executing end-to-end, bit-identical
trajectory digests across storage backends, deterministic result files and the
``repro scenario`` commands.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.scenarios import (
    BUILTIN_PACKS,
    builtin_pack,
    compare_documents,
    format_results_table,
    load_pack,
    load_pack_file,
    load_results,
    pack_from_dict,
    results_to_document,
    run_pack,
    run_scenario,
    scenario_from_dict,
    write_results,
)

# A deliberately tiny static scenario: fast enough to replicate across all
# three backends inside the default test leg.
TINY_STATIC = {
    "name": "tiny-static",
    "kind": "static",
    "replications": 3,
    "graph": {"num_entities": 60, "mean_cluster_size": 2.0, "max_cluster_size": 20},
    "labels": {"model": "random_error", "params": {"accuracy": 0.9}},
    "design": "srs",
    "moe_target": 0.15,
    "gates": {"coverage_slack": 0.5},
}

TINY_EVOLVING = {
    "name": "tiny-evolving",
    "kind": "evolving",
    "replications": 2,
    "graph": {"num_entities": 60, "mean_cluster_size": 2.0, "max_cluster_size": 20},
    "labels": {"model": "calibrated", "params": {"accuracy": 0.85}},
    "evaluator": "ss",
    "moe_target": 0.15,
    "workload": {"total_updates": 40, "num_batches": 2, "schedule": "bursty"},
    "gates": {"coverage_slack": 0.5},
}

TINY_DELETION = {
    "name": "tiny-deletion",
    "kind": "deletion",
    "replications": 2,
    "graph": {"num_entities": 60, "mean_cluster_size": 2.0, "max_cluster_size": 20},
    "labels": {"model": "calibrated", "params": {"accuracy": 0.9}},
    "design": "twcs",
    "moe_target": 0.15,
    "workload": {"total_updates": 40, "num_batches": 2, "deletion_fraction": 0.5},
    "gates": {"coverage_slack": 0.5},
}

TINY_FLEET = {
    "name": "tiny-fleet",
    "kind": "fleet",
    "replications": 1,
    "moe_target": 0.1,
    "fleet": [{"dataset": "nell", "evaluator": "ss"}],
    "workload": {"total_updates": 60, "num_batches": 2},
    "gates": {"coverage_slack": 0.5},
}


# --------------------------------------------------------------------------- #
# Spec parsing
# --------------------------------------------------------------------------- #
class TestSpecParsing:
    def test_minimal_scenario_gets_defaults(self):
        spec = scenario_from_dict({"name": "s"})
        assert spec.kind == "static"
        assert spec.design == "twcs"
        assert spec.nominal_coverage == spec.confidence == 0.95
        assert spec.max_moe == pytest.approx(1.5 * spec.moe_target)

    def test_gate_overrides_take_precedence(self):
        spec = scenario_from_dict(
            {"name": "s", "gates": {"nominal_coverage": 0.9, "max_moe": 0.2}}
        )
        assert spec.nominal_coverage == 0.9
        assert spec.max_moe == 0.2

    @pytest.mark.parametrize(
        "raw, fragment",
        [
            ({"name": "s", "typo_key": 1}, "unknown keys"),
            ({"name": "s", "graph": {"entities": 5}}, "unknown keys"),
            ({"name": "s", "gates": {"slack": 0.1}}, "unknown keys"),
            ({"name": "s", "kind": "nope"}, "kind must be"),
            ({"name": "s", "design": "nope"}, "design must be"),
            ({"name": "s", "labels": {"model": "nope"}}, "label model"),
            ({"name": "s", "moe_target": 0.0}, "moe_target"),
            ({"name": "s", "gates": {"cost_tolerance": 0.5}}, "cost_tolerance"),
            ({"name": "s", "kind": "fleet"}, "at least one session"),
            ({"name": "s", "kind": "deletion"}, "deletion_fraction"),
            ({"name": "s", "labels": {"model": "dataset"}}, "dataset-sourced graph"),
            ({"name": "s", "kind": "evolving", "cost": {"drift": 0.5}}, "drift"),
            (
                {
                    "name": "s",
                    "kind": "fleet",
                    "fleet": [{"dataset": "nell", "evaluator": "ss"}],
                    "cost": {"identification_cost": 1.0},
                },
                "paper-default cost model",
            ),
        ],
    )
    def test_invalid_scenarios_fail_loudly(self, raw, fragment):
        with pytest.raises(ValueError, match=fragment):
            scenario_from_dict(raw)

    def test_pack_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            pack_from_dict({"name": "p", "scenarios": [{"name": "a"}, {"name": "a"}]})

    def test_pack_lookup(self):
        pack = pack_from_dict({"name": "p", "scenarios": [TINY_STATIC]})
        assert pack.scenario("tiny-static").name == "tiny-static"
        with pytest.raises(KeyError):
            pack.scenario("missing")

    def test_pack_file_roundtrip_json_and_toml(self, tmp_path):
        document = {"name": "file-pack", "description": "d", "scenarios": [TINY_STATIC]}
        json_path = tmp_path / "pack.json"
        json_path.write_text(json.dumps(document))
        toml_path = tmp_path / "pack.toml"
        toml_path.write_text(
            "\n".join(
                [
                    'name = "file-pack"',
                    'description = "d"',
                    "[[scenarios]]",
                    'name = "tiny-static"',
                    'kind = "static"',
                    "replications = 3",
                    'design = "srs"',
                    "moe_target = 0.15",
                    "[scenarios.graph]",
                    "num_entities = 60",
                    "mean_cluster_size = 2.0",
                    "max_cluster_size = 20",
                    "[scenarios.labels]",
                    'model = "random_error"',
                    "[scenarios.labels.params]",
                    "accuracy = 0.9",
                    "[scenarios.gates]",
                    "coverage_slack = 0.5",
                ]
            )
        )
        from_json = load_pack_file(json_path)
        from_toml = load_pack_file(toml_path)
        assert from_json.scenario("tiny-static") == from_toml.scenario("tiny-static")

    def test_load_pack_resolves_builtins_and_rejects_junk(self):
        for name in BUILTIN_PACKS:
            assert len(load_pack(name)) >= 8
        with pytest.raises(ValueError, match="unknown pack"):
            load_pack("no-such-pack")
        with pytest.raises(FileNotFoundError):
            load_pack("missing.json")

    def test_builtin_smoke_mirrors_full(self):
        full = builtin_pack(smoke=False)
        smoke = builtin_pack(smoke=True)
        assert [s.name for s in full] == [s.name for s in smoke]
        assert all(
            smoke.scenario(s.name).replications <= s.replications for s in full
        )


# --------------------------------------------------------------------------- #
# Runner
# --------------------------------------------------------------------------- #
class TestRunner:
    @pytest.mark.parametrize(
        "raw", [TINY_STATIC, TINY_EVOLVING, TINY_DELETION, TINY_FLEET]
    )
    def test_each_kind_runs_end_to_end(self, raw):
        spec = scenario_from_dict(raw)
        result = run_scenario(spec, backend="memory", root_seed=0)
        assert result.name == spec.name
        assert result.coverage_trials >= spec.replications
        assert 0.0 <= result.empirical_coverage <= 1.0
        assert result.wilson_lower <= result.empirical_coverage <= result.wilson_upper
        assert len(result.digest) == 64
        assert result.mean_moe > 0.0

    @pytest.mark.parametrize("raw", [TINY_STATIC, TINY_EVOLVING, TINY_DELETION])
    def test_digests_identical_across_backends(self, raw):
        spec = scenario_from_dict(raw)
        digests = {
            backend: run_scenario(spec, backend=backend, root_seed=0).digest
            for backend in ("memory", "columnar", "sqlite")
        }
        assert len(set(digests.values())) == 1, digests

    def test_digest_changes_with_root_seed(self):
        spec = scenario_from_dict(TINY_STATIC)
        first = run_scenario(spec, backend="memory", root_seed=0)
        second = run_scenario(spec, backend="memory", root_seed=1)
        assert first.digest != second.digest

    def test_rerun_is_bit_identical(self):
        spec = scenario_from_dict(TINY_STATIC)
        first = run_scenario(spec, backend="memory", root_seed=3)
        second = run_scenario(spec, backend="memory", root_seed=3)
        assert first == second

    def test_replication_override(self):
        spec = scenario_from_dict(TINY_STATIC)
        result = run_scenario(spec, backend="memory", replications=5, root_seed=0)
        assert result.replications == 5

    def test_run_pack_only_filters(self):
        pack = pack_from_dict(
            {"name": "p", "scenarios": [TINY_STATIC, TINY_EVOLVING]}
        )
        results = run_pack(pack, backend="memory", only="tiny-static")
        assert [r.name for r in results] == ["tiny-static"]
        results = run_pack(pack, backend="memory", only=("tiny-evolving", "tiny-static"))
        assert [r.name for r in results] == ["tiny-evolving", "tiny-static"]

    def test_failed_gate_reports_failure(self):
        # An impossible MoE ceiling forces the moe gate to fail.
        raw = dict(TINY_STATIC, name="doomed", gates={"max_moe": 1e-6})
        result = run_scenario(scenario_from_dict(raw), backend="memory", root_seed=0)
        assert not result.moe_passed
        assert not result.passed
        assert any("moe" in failure.lower() for failure in result.failures())


# --------------------------------------------------------------------------- #
# Report files
# --------------------------------------------------------------------------- #
class TestReport:
    def _document(self):
        pack = pack_from_dict({"name": "p", "scenarios": [TINY_STATIC]})
        results = run_pack(pack, backend="memory", root_seed=0)
        return results_to_document("p", "memory", 0, results), results

    def test_write_load_roundtrip(self, tmp_path):
        document, results = self._document()
        path = write_results(tmp_path / "SCENARIOS_test.json", document)
        loaded = load_results(path)
        assert loaded == json.loads(json.dumps(document))  # JSON-stable
        assert loaded["passed"] is all(r.passed for r in results)

    def test_document_is_deterministic(self, tmp_path):
        first, _ = self._document()
        second, _ = self._document()
        assert first == second

    def test_load_rejects_unknown_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": 99}))
        with pytest.raises(ValueError, match="unsupported results format"):
            load_results(path)

    def test_compare_identical_documents_is_clean(self):
        document, _ = self._document()
        assert compare_documents(document, document) == []

    def test_compare_flags_drift_and_missing_scenarios(self):
        document, _ = self._document()
        drifted = json.loads(json.dumps(document))
        drifted["results"][0]["digest"] = "0" * 64
        drifted["results"][0]["mean_moe"] += 0.5
        differences = compare_documents(document, drifted)
        assert any("digest" in line for line in differences)
        assert any("mean_moe" in line for line in differences)
        emptied = json.loads(json.dumps(document))
        emptied["results"] = []
        assert any("missing" in line for line in compare_documents(document, emptied))

    def test_compare_float_tolerance(self):
        document, _ = self._document()
        nudged = json.loads(json.dumps(document))
        nudged["results"][0]["mean_moe"] += 1e-12
        assert compare_documents(document, nudged) == []
        assert compare_documents(document, nudged, float_tolerance=1e-15) != []

    def test_format_results_table_mentions_every_scenario(self):
        _, results = self._document()
        table = format_results_table(results)
        assert "tiny-static" in table
        assert "PASS" in table or "FAIL" in table


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
class TestScenarioCli:
    def _pack_file(self, tmp_path):
        path = tmp_path / "pack.json"
        path.write_text(
            json.dumps({"name": "cli-pack", "scenarios": [TINY_STATIC]})
        )
        return path

    def test_list_builtins(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        assert "builtin-full" in out and "builtin-smoke" in out

    def test_list_pack_contents(self, capsys):
        assert main(["scenario", "list", "--pack", "builtin-smoke"]) == 0
        out = capsys.readouterr().out
        assert "srs-bernoulli-exact" in out
        assert "fleet-concurrent" in out

    def test_run_writes_results_and_compare_round_trips(self, tmp_path, capsys):
        pack = self._pack_file(tmp_path)
        out_path = tmp_path / "SCENARIOS_cli.json"
        assert (
            main(["scenario", "run", "--pack", str(pack), "--out", str(out_path)]) == 0
        )
        assert "tiny-static" in capsys.readouterr().out
        assert out_path.is_file()
        assert (
            main(["scenario", "compare", str(out_path), str(out_path)]) == 0
        )
        assert "OK" in capsys.readouterr().out

    def test_compare_exits_nonzero_on_drift(self, tmp_path, capsys):
        pack = self._pack_file(tmp_path)
        out_path = tmp_path / "current.json"
        main(["scenario", "run", "--pack", str(pack), "--out", str(out_path)])
        capsys.readouterr()
        drifted = json.loads(out_path.read_text())
        drifted["results"][0]["digest"] = "f" * 64
        drifted_path = tmp_path / "baseline.json"
        drifted_path.write_text(json.dumps(drifted))
        assert (
            main(["scenario", "compare", str(drifted_path), str(out_path)]) == 1
        )
        assert "digest" in capsys.readouterr().out

    def test_run_exits_nonzero_on_gate_failure(self, tmp_path, capsys):
        doomed = dict(TINY_STATIC, name="doomed", gates={"max_moe": 1e-6})
        path = tmp_path / "doomed.json"
        path.write_text(json.dumps({"name": "p", "scenarios": [doomed]}))
        assert main(["scenario", "run", "--pack", str(path)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_run_only_and_replications_flags(self, tmp_path, capsys):
        path = tmp_path / "pack.json"
        path.write_text(
            json.dumps({"name": "p", "scenarios": [TINY_STATIC, TINY_EVOLVING]})
        )
        code = main(
            [
                "scenario",
                "run",
                "--pack",
                str(path),
                "--only",
                "tiny-static",
                "--replications",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "tiny-static" in out
        assert "tiny-evolving" not in out
