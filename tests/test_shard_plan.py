"""ShardPlan construction, balance, and degenerate inputs; ShardView slicing."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.generators.datasets import make_nell_like
from repro.storage.shard import ShardPlan, ShardView


def _offsets(sizes) -> np.ndarray:
    return np.concatenate(([0], np.cumsum(np.asarray(sizes, dtype=np.int64))))


class TestShardPlanBalance:
    def test_even_sizes_split_evenly(self):
        plan = ShardPlan.from_sizes([5] * 12, 4)
        assert plan.num_shards == 4
        np.testing.assert_array_equal(plan.boundaries, [0, 3, 6, 9, 12])
        np.testing.assert_array_equal(plan.triple_counts(), [15, 15, 15, 15])

    def test_skewed_sizes_balance_by_triples_not_rows(self):
        sizes = [100] + [1] * 100  # one hot cluster followed by a long tail
        plan = ShardPlan.from_sizes(sizes, 2)
        assert plan.num_shards == 2
        # The giant cluster alone is half the mass: it forms the first shard.
        assert plan.row_range(0) == (0, 1)
        assert plan.row_range(1) == (1, 101)

    def test_triple_counts_sum_to_total(self):
        rng = np.random.default_rng(0)
        sizes = rng.integers(1, 50, size=500)
        for shards in (1, 2, 3, 7, 16):
            plan = ShardPlan.from_sizes(sizes, shards)
            assert plan.triple_counts().sum() == sizes.sum()
            assert plan.entity_counts().sum() == 500
            assert np.all(np.diff(plan.boundaries) > 0)

    def test_shard_of_row_and_partition(self):
        plan = ShardPlan.from_sizes([2, 2, 2, 2], 2)
        assert [plan.shard_of_row(row) for row in range(4)] == [0, 0, 1, 1]
        parts = plan.partition_rows(np.array([3, 0, 2, 1]))
        assert [(shard, idx.tolist()) for shard, idx in parts] == [(0, [1, 3]), (1, [0, 2])]
        with pytest.raises(IndexError):
            plan.shard_of_row(4)
        with pytest.raises(IndexError):
            plan.row_range(2)


class TestShardPlanDegenerateInputs:
    def test_empty_graph_yields_zero_shards(self):
        plan = ShardPlan.from_offsets(np.zeros(1, dtype=np.int64), 4)
        assert plan.num_shards == 0
        assert plan.num_entities == 0
        assert plan.num_triples == 0
        assert plan.partition_rows(np.empty(0, dtype=np.int64)) == []

    def test_more_shards_than_entities_clamps(self):
        plan = ShardPlan.from_sizes([3, 3, 3], 10)
        assert plan.num_shards == 3
        np.testing.assert_array_equal(plan.boundaries, [0, 1, 2, 3])
        # Skewed sizes may merge further, but never exceed one shard per row.
        assert ShardPlan.from_sizes([3, 4, 5], 10).num_shards <= 3

    def test_single_giant_cluster_larger_than_m_over_k(self):
        # One cluster holds ~96% of the mass; it cannot be split, so it gets
        # a shard of its own and the plan collapses to 2 shards, not 4.
        plan = ShardPlan.from_sizes([500] + [1] * 20, 4)
        assert plan.num_shards == 2
        assert plan.row_range(0) == (0, 1)
        assert int(plan.triple_counts()[0]) == 500

    def test_single_cluster_graph(self):
        plan = ShardPlan.from_sizes([42], 7)
        assert plan.num_shards == 1
        assert plan.row_range(0) == (0, 1)

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            ShardPlan.from_sizes([1, 2], 0)
        with pytest.raises(ValueError):
            ShardPlan.from_sizes([1, 2], -3)


class TestShardView:
    def test_zero_copy_slices_and_rebased_offsets(self):
        offsets = _offsets([2, 3, 1, 4])
        positions = np.arange(10, dtype=np.int64)[::-1].copy()
        view = ShardView.from_csr(offsets, positions, 1, 3)
        assert view.num_rows == 2
        assert view.num_triples == 4
        np.testing.assert_array_equal(view.local_offsets(), [0, 3, 4])
        np.testing.assert_array_equal(view.sizes(), [3, 1])
        np.testing.assert_array_equal(view.cluster_positions(0), positions[2:5])
        assert view.global_row(1) == 2
        # The slices share memory with the source arrays (no copies).
        assert np.shares_memory(view.positions, positions)
        assert np.shares_memory(view.offsets, offsets)

    def test_from_plan_covers_the_graph(self):
        data = make_nell_like(seed=0)
        graph = data.graph.to_columnar()
        offsets, positions = graph.backend.csr_arrays()
        plan = graph.shard_plan(5)
        covered = sum(
            ShardView.from_plan(offsets, positions, plan, shard).num_triples
            for shard in range(plan.num_shards)
        )
        assert covered == graph.num_triples

    def test_pickle_round_trip_plain_arrays(self):
        offsets = _offsets([2, 2, 2])
        positions = np.arange(6, dtype=np.int64)
        view = ShardView.from_csr(offsets, positions, 0, 2)
        clone = pickle.loads(pickle.dumps(view))
        np.testing.assert_array_equal(clone.offsets, view.offsets)
        np.testing.assert_array_equal(clone.positions, view.positions)
        assert clone.row_start == view.row_start

    def test_pickle_round_trip_via_snapshot(self, tmp_path):
        data = make_nell_like(seed=0)
        graph = data.graph.to_columnar()
        snap = tmp_path / "kg-dir"
        graph.save_snapshot(snap)
        view = ShardView.from_snapshot(snap, 3, 9)
        clone = pickle.loads(pickle.dumps(view))
        assert clone.snapshot_path == str(snap)
        np.testing.assert_array_equal(np.asarray(clone.offsets), np.asarray(view.offsets))
        np.testing.assert_array_equal(
            np.asarray(clone.positions), np.asarray(view.positions)
        )
        # mmap attachment matches the in-memory CSR slice.
        offsets, positions = graph.backend.csr_arrays()
        direct = ShardView.from_csr(offsets, positions, 3, 9)
        np.testing.assert_array_equal(np.asarray(clone.positions), direct.positions)
