"""Adaptive transport planner: decision pins, calibration, and auto parity.

The decision tests pin the planner's output for canonical graph shapes
under a *fixed* calibration profile and a *fixed* CPU count — the planner
must be a pure function of (stats, profile, cpu_count, pins), so these are
bit-stable across hosts.  The CLI replay test then closes the loop the
tentpole promises: ``--transport auto`` prints the same numbers as
``--transport serial``.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.generators.datasets import make_nell_like
from repro.sampling.planner import (
    AdaptivePlanner,
    CalibrationProfile,
    TransportCost,
    default_profile_path,
    load_profile,
    save_profile,
)
from repro.storage.backend import StorageStats


def _fixed_profile() -> CalibrationProfile:
    """A hand-pinned profile so decisions don't depend on built-in priors."""
    return CalibrationProfile(
        transports={
            "serial": TransportCost(per_draw_us=10.0, round_overhead_ms=0.0, startup_ms=0.0),
            "pool": TransportCost(per_draw_us=10.0, round_overhead_ms=2.0, startup_ms=300.0),
            "shm": TransportCost(per_draw_us=10.0, round_overhead_ms=1.0, startup_ms=100.0),
            "rpc": TransportCost(per_draw_us=10.0, round_overhead_ms=5.0, startup_ms=500.0),
        }
    )


def _stats(triples=1_000_000, entities=100_000, mean=10.0, biggest=30, cv=0.5) -> StorageStats:
    return StorageStats(
        num_triples=triples,
        num_entities=entities,
        mean_cluster_size=mean,
        max_cluster_size=biggest,
        size_cv=cv,
    )


class TestDecisions:
    def test_small_graph_stays_serial(self):
        planner = AdaptivePlanner(_fixed_profile(), cpu_count=8)
        decision = planner.plan(_stats(triples=2_000, entities=300), draws=1_000)
        assert decision.transport == "serial"
        assert decision.shards == 1
        assert decision.workers == 1
        assert decision.rpc_window is None
        assert decision.predictions["serial"] == decision.predicted_seconds

    def test_medium_graph_picks_shm(self):
        planner = AdaptivePlanner(_fixed_profile(), cpu_count=8)
        decision = planner.plan(_stats(), draws=500_000)
        # 500k draws at 10us: serial 5s; shm ~0.1s startup + 5s/6.25 — an
        # easy >1.25x win, and shm beats pool on both overhead terms.
        assert decision.transport == "shm"
        assert decision.workers == 8
        assert decision.shards == 8
        assert decision.predictions["shm"] < decision.predictions["pool"]

    def test_skewed_graph_shards_finer(self):
        planner = AdaptivePlanner(_fixed_profile(), cpu_count=8)
        uniform = planner.plan(_stats(), draws=500_000)
        skewed = planner.plan(_stats(biggest=500), draws=500_000)  # skew 50 > 20
        assert skewed.transport == uniform.transport == "shm"
        assert skewed.shards == 2 * uniform.shards

    def test_single_cpu_never_leaves_serial(self):
        planner = AdaptivePlanner(_fixed_profile(), cpu_count=1)
        decision = planner.plan(_stats(), draws=10_000_000)
        assert decision.transport == "serial"
        assert list(decision.predictions) == ["serial"]

    def test_pinned_shards_always_honoured(self):
        planner = AdaptivePlanner(_fixed_profile(), cpu_count=8)
        for draws in (1_000, 500_000):
            decision = planner.plan(_stats(), draws=draws, shards=3)
            assert decision.shards == 3

    def test_low_draw_volume_coarsens_shards(self):
        planner = AdaptivePlanner(_fixed_profile(), cpu_count=8)
        # Skew asks for 16 shards, but 20k draws over 16 shards is only
        # 1250/shard — below MIN_DRAWS_PER_SHARD=2000, so the plan falls
        # back to draws//2000 = 10 shards.
        decision = planner.plan(_stats(biggest=500), draws=20_000)
        assert decision.transport == "shm"
        assert decision.shards == 10

    def test_tiny_runs_coarsen_below_worker_count_to_serial(self):
        planner = AdaptivePlanner(_fixed_profile(), cpu_count=8)
        # 3k draws cannot amortise even one shard per worker (8 x 2000):
        # the amortisation floor wins and the plan collapses to one shard,
        # which forces the serial transport.
        decision = planner.plan(_stats(), draws=3_000)
        assert decision.shards == 1
        assert decision.transport == "serial"
        assert list(decision.predictions) == ["serial"]

    def test_shard_plan_is_machine_and_profile_independent(self):
        # The shard count is part of the run's random-stream identity, so
        # it must be a pure function of (stats, draws): CPU width changes
        # the executing workers, never the plan...
        decisions = [
            AdaptivePlanner(_fixed_profile(), cpu_count=cpus).plan(_stats(), draws=500_000)
            for cpus in (1, 2, 8, 64)
        ]
        assert [d.shards for d in decisions] == [8, 8, 8, 8]
        assert [d.workers for d in decisions] == [1, 2, 8, 8]  # capped by max_workers
        # ...and a drifted calibration profile may flip the transport but
        # must never move the shard plan.
        drifted = _fixed_profile()
        for _ in range(5):
            drifted.observe("serial", draws=1_000, rounds=1, seconds=50.0, workers=1)
        drifted_decision = AdaptivePlanner(drifted, cpu_count=8).plan(_stats(), draws=500_000)
        assert drifted_decision.shards == 8

    def test_plan_shards_is_a_pure_stats_function(self):
        from repro.sampling.planner import plan_shards

        assert plan_shards(_stats(), 500_000) == 8
        assert plan_shards(_stats(biggest=500), 500_000) == 16  # skew doubles
        assert plan_shards(_stats(), 1_000) == 1  # tiny runs collapse
        assert plan_shards(_stats(entities=3), 500_000) == 3  # entity cap

    def test_rpc_considered_only_with_nodes(self):
        profile = _fixed_profile()
        profile.transports["rpc"] = TransportCost(
            per_draw_us=10.0, round_overhead_ms=0.1, startup_ms=1.0
        )
        planner = AdaptivePlanner(profile, cpu_count=1)
        local = planner.plan(_stats(), draws=500_000)
        assert "rpc" not in local.predictions
        remote = planner.plan(_stats(), draws=500_000, nodes=4)
        assert remote.transport == "rpc"
        assert remote.workers == 4
        assert remote.rpc_window is not None and 2 <= remote.rpc_window <= 16

    def test_rpc_window_pin_wins(self):
        profile = _fixed_profile()
        profile.transports["rpc"] = TransportCost(
            per_draw_us=10.0, round_overhead_ms=0.1, startup_ms=1.0
        )
        planner = AdaptivePlanner(profile, cpu_count=1)
        decision = planner.plan(_stats(), draws=500_000, nodes=4, rpc_window=9)
        assert decision.rpc_window == 9

    def test_warm_pool_awareness_recorded_on_the_decision(self):
        from repro.sampling import shm

        planner = AdaptivePlanner(_fixed_profile(), cpu_count=8)
        cold = planner.plan(_stats(), draws=500_000)
        assert cold.warm is False
        shm._WARM_SHM_POOLS[8] = object()  # fake a parked pool
        try:
            warmed = planner.plan(_stats(), draws=500_000)
        finally:
            shm._WARM_SHM_POOLS.pop(8, None)
        assert warmed.transport == "shm" and warmed.warm is True
        assert warmed.predictions["shm"] < cold.predictions["shm"]
        assert warmed.shards == cold.shards  # warm state never moves the plan

    def test_decision_serialises(self):
        planner = AdaptivePlanner(_fixed_profile(), cpu_count=8)
        payload = planner.plan(_stats(), draws=500_000).as_dict()
        assert json.loads(json.dumps(payload)) == payload

    def test_draws_hint_from_moe_is_monotone(self):
        loose = AdaptivePlanner.draws_for_target(0.1)
        tight = AdaptivePlanner.draws_for_target(0.01)
        assert 0 < loose < tight


class TestProfilePersistence:
    def test_round_trip(self, tmp_path):
        profile = _fixed_profile()
        profile.min_speedup = 1.5
        target = save_profile(profile, tmp_path / "planner.json")
        assert target is not None
        loaded = load_profile(target)
        assert loaded.min_speedup == 1.5
        assert loaded.cost("pool").startup_ms == 300.0

    def test_env_override_sets_default_path(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PLANNER_PROFILE", str(tmp_path / "custom.json"))
        assert default_profile_path() == tmp_path / "custom.json"
        save_profile(_fixed_profile())
        assert (tmp_path / "custom.json").exists()

    def test_corrupt_profile_falls_back_to_defaults(self, tmp_path):
        bad = tmp_path / "planner.json"
        bad.write_text("{not json", encoding="utf-8")
        profile = load_profile(bad)
        assert profile.min_speedup == 1.25

    def test_observe_updates_per_draw_ewma(self):
        profile = _fixed_profile()
        entry = profile.cost("serial")
        entry.samples = 0
        profile.observe("serial", draws=100_000, rounds=20, seconds=2.0)
        assert entry.per_draw_us == pytest.approx(20.0)  # first sample replaces
        profile.observe("serial", draws=100_000, rounds=20, seconds=1.0)
        assert 10.0 < entry.per_draw_us < 20.0  # EWMA, not replacement
        assert entry.samples == 2

    def test_observe_warm_keeps_startup_out_of_the_residual(self):
        cold, warm = _fixed_profile(), _fixed_profile()
        kwargs = dict(draws=10_000, rounds=2, seconds=1.0, workers=4)
        cold.observe("pool", warm=False, **kwargs)
        warm.observe("pool", warm=True, **kwargs)
        # A warm run never paid the startup cost, so nothing is subtracted
        # and more of the wall-clock is attributed to per-draw time —
        # without this, repeated warm runs bias per_draw_us low and the
        # planner grows spuriously optimistic about leaving serial.
        assert warm.cost("pool").per_draw_us > cold.cost("pool").per_draw_us

    def test_calibrate_from_bench(self):
        profile = CalibrationProfile()
        updated = profile.calibrate_from_bench(
            {
                "draws": 100_000,
                "engine_serial": {"seconds": 1.0},
                "engine_pool": {"seconds": 2.0, "workers": 4},
            }
        )
        assert updated == ["serial", "pool"]
        assert profile.cost("serial").per_draw_us == pytest.approx(10.0)
        # Pool's measured excess over its predicted draw share becomes
        # startup + per-round overhead, so small runs now avoid the pool.
        assert profile.cost("pool").startup_ms > 1_000.0
        assert profile.cost("pool").per_draw_us == pytest.approx(10.0)


class TestBackendStats:
    def test_columnar_stats_match_graph_shape(self):
        data = make_nell_like(seed=0)
        graph = data.graph.to_columnar()
        stats = graph.backend.stats()
        assert stats.num_triples == graph.num_triples
        assert stats.num_entities == graph.num_entities
        assert stats.mean_cluster_size == pytest.approx(graph.num_triples / graph.num_entities)
        assert stats.max_cluster_size >= stats.mean_cluster_size
        assert stats.skew >= 1.0
        assert stats.size_cv >= 0.0


class TestAutoParity:
    def _evaluate(self, capsys, *extra) -> list[str]:
        main(["evaluate", "--dataset", "nell", "--seed", "7", *extra])
        out = capsys.readouterr().out
        # Every numeric result line; planner/design provenance lines differ
        # by construction, the statistics must not.
        keep = (
            "true accuracy",
            "estimated accuracy",
            "margin of error",
            "sample units",
            "triples annotated",
            "entities identified",
            "annotation cost",
        )
        return [
            line
            for line in out.splitlines()
            if line.strip().startswith(keep) or "interval" in line
        ]

    def test_default_auto_keeps_the_classic_loop(self, capsys, tmp_path, monkeypatch):
        # At the default MoE target the deterministic shard plan is one
        # shard, so a bare `repro evaluate` must run the classic
        # single-stream evaluator — bit-identical to every pre-planner
        # default run, on any host, regardless of profile state.
        monkeypatch.setenv("REPRO_PLANNER_PROFILE", str(tmp_path / "planner.json"))
        main(["evaluate", "--dataset", "nell", "--seed", "7"])
        out = capsys.readouterr().out
        assert "estimated accuracy" in out
        assert "transport=" not in out and "shards=" not in out

    def test_transport_auto_replays_serial_bit_identically(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PLANNER_PROFILE", str(tmp_path / "planner.json"))
        auto = self._evaluate(capsys, "--transport", "auto", "--shards", "2")
        serial = self._evaluate(capsys, "--transport", "serial", "--shards", "2")
        assert auto == serial and auto

    @pytest.mark.parallel
    def test_profile_drift_flips_transport_never_numbers(self, capsys, tmp_path, monkeypatch):
        # The review scenario: a mutated calibration profile may change the
        # planner's transport pick, but a seeded command's estimates must
        # not move.  Force a profile that makes parallel look free and
        # compare against the serial reference on the same shard plan.
        profile_path = tmp_path / "planner.json"
        monkeypatch.setenv("REPRO_PLANNER_PROFILE", str(profile_path))
        eager = CalibrationProfile(
            transports={
                "serial": TransportCost(per_draw_us=50.0, round_overhead_ms=0.0, startup_ms=0.0),
                "shm": TransportCost(per_draw_us=50.0, round_overhead_ms=0.0, startup_ms=0.0),
                "pool": TransportCost(per_draw_us=50.0, round_overhead_ms=0.0, startup_ms=0.0),
            },
            min_speedup=1.0,
        )
        save_profile(eager, profile_path)
        auto = self._evaluate(capsys, "--transport", "auto", "--shards", "2")
        serial = self._evaluate(capsys, "--transport", "serial", "--shards", "2")
        assert auto == serial and auto
