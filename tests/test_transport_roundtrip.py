"""Round-trip properties of the shard transport wire layer.

The RPC protocol's correctness reduces to ``decode ∘ encode == id`` on the
objects that cross it — :class:`ShardTask` / :class:`ShardResult` (with
every :class:`ShardSource` kind and the live numpy RNG state they carry)
and the content-addressed snapshot packages.  Hypothesis drives randomized
instances through the byte codec; no sockets are involved, so this runs in
the tier-1 leg.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.trace import TraceContext
from repro.sampling.parallel import ShardResult, ShardSource, ShardTask
from repro.sampling.rpc import decode_message, encode_message
from repro.storage.distribute import (
    SnapshotCache,
    csr_digest,
    pack_array,
    pack_csr,
    unpack_array,
)

_int_arrays = st.lists(
    st.integers(min_value=0, max_value=2**31 - 1), min_size=0, max_size=24
).map(lambda values: np.asarray(values, dtype=np.int64))


def _sources():
    ranges = st.tuples(
        st.integers(min_value=0, max_value=100), st.integers(min_value=0, max_value=100)
    ).map(lambda pair: ShardSource(kind="range", lo=min(pair), hi=max(pair)))
    rows = _int_arrays.map(lambda array: ShardSource(kind="rows", rows=array))
    csr = st.lists(
        st.integers(min_value=0, max_value=9), min_size=0, max_size=12
    ).map(
        lambda sizes: ShardSource(
            kind="csr",
            offsets=np.concatenate(([0], np.cumsum(sizes))).astype(np.int64),
            positions=np.arange(int(sum(sizes)), dtype=np.int64),
        )
    )
    return st.one_of(ranges, rows, csr)


def _traces():
    """Optional trace contexts: the fuzz corpus covers both wire encodings
    (legacy untraced tags and the traced v2 tags)."""
    hex_id = st.text(alphabet="0123456789abcdef", min_size=1, max_size=32)
    return st.one_of(st.none(), st.builds(TraceContext, trace_id=hex_id, span_id=hex_id))


def _traces_equal(first, second) -> bool:
    if first is None or second is None:
        return (first is None) == (second is None)
    return first.trace_id == second.trace_id and first.span_id == second.span_id


def _tasks():
    return st.builds(
        ShardTask,
        index=st.integers(min_value=0, max_value=64),
        design=st.sampled_from(["srs", "rcs", "wcs", "twcs", "tsrcs", "fixed"]),
        source=_sources(),
        count=st.integers(min_value=0, max_value=1_000),
        cap=st.integers(min_value=1, max_value=50),
        rng_state=st.one_of(
            st.none(),
            st.integers(min_value=0, max_value=2**32 - 1).map(
                lambda seed: np.random.default_rng(seed).bit_generator.state
            ),
        ),
        perm_seed=st.one_of(
            st.none(),
            st.integers(min_value=0, max_value=2**32 - 1).map(np.random.SeedSequence),
        ),
        cursor=st.integers(min_value=0, max_value=10_000),
        trace=_traces(),
    )


def _results():
    return st.builds(
        ShardResult,
        index=st.integers(min_value=0, max_value=64),
        rows=_int_arrays,
        counts=_int_arrays,
        sizes=_int_arrays,
        positions=_int_arrays,
        rng_state=st.integers(min_value=0, max_value=2**32 - 1).map(
            lambda seed: np.random.default_rng(seed).bit_generator.state
        ),
        cursor=st.integers(min_value=0, max_value=10_000),
        elapsed=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        trace=_traces(),
    )


def _arrays_equal(first: np.ndarray | None, second: np.ndarray | None) -> bool:
    if first is None or second is None:
        return (first is None) == (second is None)
    return (
        first.dtype == second.dtype
        and first.shape == second.shape
        and bool(np.array_equal(first, second))
    )


def _sources_equal(first: ShardSource, second: ShardSource) -> bool:
    return (
        first.kind == second.kind
        and first.lo == second.lo
        and first.hi == second.hi
        and _arrays_equal(first.rows, second.rows)
        and _arrays_equal(first.offsets, second.offsets)
        and _arrays_equal(first.positions, second.positions)
    )


def _seeds_equal(first, second) -> bool:
    if first is None or second is None:
        return (first is None) == (second is None)
    return first.entropy == second.entropy and first.spawn_key == second.spawn_key


@given(task=_tasks())
def test_task_roundtrip_is_identity(task):
    decoded = decode_message(encode_message(task))
    assert isinstance(decoded, ShardTask)
    assert decoded.index == task.index
    assert decoded.design == task.design
    assert decoded.count == task.count
    assert decoded.cap == task.cap
    assert decoded.cursor == task.cursor
    assert decoded.rng_state == task.rng_state
    assert _seeds_equal(decoded.perm_seed, task.perm_seed)
    assert _sources_equal(decoded.source, task.source)
    assert _traces_equal(decoded.trace, task.trace)


@given(result=_results())
def test_result_roundtrip_is_identity(result):
    decoded = decode_message(encode_message(result))
    assert isinstance(decoded, ShardResult)
    assert decoded.index == result.index
    assert decoded.cursor == result.cursor
    assert decoded.elapsed == result.elapsed
    assert decoded.rng_state == result.rng_state
    assert _traces_equal(decoded.trace, result.trace)
    for name in ("rows", "counts", "sizes", "positions"):
        assert _arrays_equal(getattr(decoded, name), getattr(result, name))


@given(task=_tasks())
def test_roundtrip_preserves_draw_behaviour(task):
    """A decoded task with live RNG state resumes the *same* random stream."""
    decoded = decode_message(encode_message(task))
    if task.rng_state is None:
        return
    original = np.random.default_rng()
    original.bit_generator.state = task.rng_state
    restored = np.random.default_rng()
    restored.bit_generator.state = decoded.rng_state
    np.testing.assert_array_equal(
        original.integers(0, 1 << 30, size=8), restored.integers(0, 1 << 30, size=8)
    )


@given(
    offsets=st.lists(st.integers(min_value=0, max_value=7), min_size=0, max_size=16).map(
        lambda sizes: np.concatenate(([0], np.cumsum(sizes))).astype(np.int64)
    ),
)
def test_csr_package_roundtrip_and_digest_stability(offsets):
    positions = np.arange(int(offsets[-1]), dtype=np.int64)
    package = pack_csr(offsets, positions)
    assert _arrays_equal(unpack_array(package["cluster_offsets"]), offsets)
    assert _arrays_equal(unpack_array(package["cluster_positions"]), positions)
    # The digest is a function of content only: same arrays, same address.
    assert csr_digest(offsets, positions) == csr_digest(offsets.copy(), positions.copy())
    # Any content change moves the address.
    if positions.shape[0]:
        changed = positions.copy()
        changed[0] += 1
        assert csr_digest(offsets, changed) != csr_digest(offsets, positions)


def test_digest_covers_dtype_and_split():
    values = np.arange(6, dtype=np.int64)
    assert csr_digest(values, values) != csr_digest(values, values.astype(np.int32))
    # Swapping bytes between the two arrays must not collide.
    assert csr_digest(values[:2], values[2:]) != csr_digest(values[:4], values[4:])


def test_snapshot_cache_roundtrip(tmp_path):
    offsets = np.asarray([0, 2, 5], dtype=np.int64)
    positions = np.asarray([4, 1, 0, 3, 2], dtype=np.int64)
    digest = csr_digest(offsets, positions)
    cache = SnapshotCache(tmp_path / "cache")
    assert not cache.has(digest)
    cache.store(digest, pack_csr(offsets, positions))
    assert cache.has(digest)
    assert cache.digests() == [digest]
    loaded_offsets, loaded_positions = cache.load_csr(digest)
    np.testing.assert_array_equal(loaded_offsets, offsets)
    np.testing.assert_array_equal(loaded_positions, positions)
    # Storing again is a no-op, and a second cache over the same root sees it.
    cache.store(digest, pack_csr(offsets, positions))
    assert SnapshotCache(tmp_path / "cache").has(digest)


def test_snapshot_cache_sweeps_staging_leftovers(tmp_path):
    """Orphaned .tmp-* staging dirs never shadow digests and get swept."""
    root = tmp_path / "cache"
    root.mkdir()
    (root / ".tmp-deadbeef-orphan").mkdir()
    cache = SnapshotCache(root)
    assert cache.digests() == []
    assert not (root / ".tmp-deadbeef-orphan").exists()


def test_pack_array_is_portable_npy():
    array = np.asarray([[1, 2], [3, 4]], dtype=np.int32)
    restored = unpack_array(pack_array(array))
    assert restored.dtype == array.dtype
    np.testing.assert_array_equal(restored, array)
