"""Property-based tests for the deterministic draw-allocation core.

``largest_remainder`` sits under every per-round decision the sharded
engine makes (shard splits, stratum splits, WOR budgets), so its invariants
are load-bearing for the determinism contract: totals must be preserved
exactly, ties must break stably (first index wins), and degenerate weight
vectors must collapse to all-zeros instead of leaking draws.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.stats.allocation import largest_remainder, proportional_allocation

_weights = st.lists(
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=12,
)


@given(weights=_weights, total=st.integers(min_value=0, max_value=10_000))
def test_sum_preservation(weights, total):
    """Every draw is handed out iff the weight vector carries any mass."""
    allocation = largest_remainder(weights, total)
    assert allocation.dtype == np.int64
    assert allocation.shape == (len(weights),)
    assert np.all(allocation >= 0)
    if total > 0 and sum(weights) > 0:
        assert int(allocation.sum()) == total
    else:
        assert int(allocation.sum()) == 0


@given(weights=_weights, total=st.integers(min_value=0, max_value=10_000))
def test_zero_weight_entries_receive_nothing(weights, total):
    allocation = largest_remainder(weights, total)
    for weight, share in zip(weights, allocation):
        if weight == 0.0:
            assert share == 0


@given(weights=_weights, total=st.integers(min_value=0, max_value=10_000))
def test_deterministic(weights, total):
    """Same inputs, same split — repeated and under array/list input forms."""
    first = largest_remainder(weights, total)
    second = largest_remainder(np.asarray(weights, dtype=float), total)
    np.testing.assert_array_equal(first, second)


@given(
    count=st.integers(min_value=2, max_value=10),
    total=st.integers(min_value=1, max_value=1_000),
)
def test_stable_tie_break_prefers_earlier_entries(count, total):
    """Equal weights with equal remainders: leftovers go to the lowest indices."""
    allocation = largest_remainder([1.0] * count, total)
    base, leftover = divmod(total, count)
    expected = np.full(count, base, dtype=np.int64)
    expected[:leftover] += 1
    np.testing.assert_array_equal(allocation, expected)


def test_negative_or_empty_mass_yields_zeros():
    """Degenerate edges: no mass (or negative total) must allocate nothing."""
    np.testing.assert_array_equal(largest_remainder([0.0, 0.0], 10), [0, 0])
    np.testing.assert_array_equal(largest_remainder([-1.0, -2.0], 10), [0, 0])
    np.testing.assert_array_equal(largest_remainder([1.0, 2.0], 0), [0, 0])
    np.testing.assert_array_equal(largest_remainder([1.0, 2.0], -5), [0, 0])
    # A net-negative weight sum is degenerate even with positive entries mixed in.
    np.testing.assert_array_equal(largest_remainder([3.0, -4.0], 7), [0, 0])


@given(
    weights=st.lists(
        st.floats(min_value=0.01, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=8,
    ),
    total=st.integers(min_value=0, max_value=1_000),
)
def test_proportional_allocation_agrees_on_sum_and_minimums(weights, total):
    """The stratum-facing wrapper preserves the total and the ≥1 guarantee."""
    allocation = proportional_allocation(weights, total)
    assert sum(allocation) == (total if total > 0 else 0)
    if total >= len(weights):
        # Donor-based minimum: every positive-weight stratum eventually draws,
        # unless no donor stratum can spare a draw.
        assert all(share >= 0 for share in allocation)
