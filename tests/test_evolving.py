"""Unit tests for evolving-KG evaluation: baseline, reservoir (Alg. 1), stratified (Alg. 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evolving.baseline import BaselineEvolvingEvaluator
from repro.evolving.monitor import EvolvingAccuracyMonitor
from repro.evolving.reservoir_eval import ReservoirIncrementalEvaluator
from repro.evolving.stratified_eval import StratifiedIncrementalEvaluator
from repro.generators.datasets import LabelledKG, make_movie_like
from repro.generators.workload import UpdateWorkloadGenerator
from repro.labels.random_error import RandomErrorModel

ALL_EVALUATORS = [
    BaselineEvolvingEvaluator,
    ReservoirIncrementalEvaluator,
    StratifiedIncrementalEvaluator,
]


@pytest.fixture(scope="module")
def evolving_base() -> LabelledKG:
    """A small MOVIE-like base KG with REM labels at 90 % accuracy."""
    movie = make_movie_like(seed=4, scale=0.004)
    rng = np.random.default_rng(4)
    graph = movie.graph.random_triple_subset(0.6, rng, name="base")
    oracle = RandomErrorModel.with_accuracy(0.9, seed=4).generate(graph)
    return LabelledKG(graph, oracle)


def make_update(base: LabelledKG, size: int, accuracy: float, seed: int):
    generator = UpdateWorkloadGenerator(base, seed=seed)
    return generator.generate_batch(size, accuracy)


class TestCommonBehaviour:
    @pytest.mark.parametrize("evaluator_cls", ALL_EVALUATORS)
    def test_base_evaluation_meets_quality(self, evolving_base, evaluator_cls):
        evaluator = evaluator_cls(evolving_base, seed=0)
        evaluation = evaluator.evaluate_base()
        assert evaluation.batch_id == "base"
        assert evaluation.report.satisfied
        assert evaluation.report.margin_of_error <= 0.05
        assert abs(evaluation.accuracy - evolving_base.true_accuracy) < 0.12
        assert evaluation.cumulative_cost_seconds > 0

    @pytest.mark.parametrize("evaluator_cls", ALL_EVALUATORS)
    def test_update_keeps_quality_and_tracks_truth(self, evolving_base, evaluator_cls):
        evaluator = evaluator_cls(evolving_base, seed=1)
        evaluator.evaluate_base()
        batch, batch_oracle = make_update(
            evolving_base, size=evolving_base.graph.num_triples // 3, accuracy=0.5, seed=1
        )
        evaluation = evaluator.apply_update(batch, batch_oracle)
        truth = evaluator.oracle.true_accuracy(evaluator.evolving.current)
        assert evaluation.report.margin_of_error <= 0.06
        assert abs(evaluation.accuracy - truth) < 0.12
        assert evaluation.cumulative_cost_seconds >= evaluator.history[0].cumulative_cost_seconds

    @pytest.mark.parametrize(
        "evaluator_cls", [ReservoirIncrementalEvaluator, StratifiedIncrementalEvaluator]
    )
    def test_update_before_base_raises(self, evolving_base, evaluator_cls):
        evaluator = evaluator_cls(evolving_base, seed=0)
        batch, batch_oracle = make_update(evolving_base, 100, 0.9, seed=0)
        with pytest.raises(RuntimeError):
            evaluator.apply_update(batch, batch_oracle)

    @pytest.mark.parametrize("evaluator_cls", ALL_EVALUATORS)
    def test_history_accumulates(self, evolving_base, evaluator_cls):
        evaluator = evaluator_cls(evolving_base, seed=2)
        evaluator.evaluate_base()
        for index in range(2):
            batch, batch_oracle = make_update(evolving_base, 200, 0.8, seed=10 + index)
            evaluator.apply_update(batch, batch_oracle)
        assert len(evaluator.history) == 3
        assert evaluator.latest.batch_id == evaluator.history[-1].batch_id
        costs = [h.cumulative_cost_seconds for h in evaluator.history]
        assert costs == sorted(costs)
        assert evaluator.total_cost_hours == pytest.approx(costs[-1] / 3600)


class TestIncrementalCostAdvantage:
    def test_incremental_methods_cheaper_than_baseline(self, evolving_base):
        """The central claim of Section 6: RS and SS beat re-evaluation from scratch."""
        update_size = evolving_base.graph.num_triples // 3
        costs = {}
        for evaluator_cls in ALL_EVALUATORS:
            per_trial = []
            for seed in range(3):
                evaluator = evaluator_cls(evolving_base, seed=seed)
                evaluator.evaluate_base()
                batch, batch_oracle = make_update(evolving_base, update_size, 0.9, seed=seed)
                evaluation = evaluator.apply_update(batch, batch_oracle)
                per_trial.append(evaluation.incremental_cost_hours)
            costs[evaluator_cls.__name__] = float(np.mean(per_trial))
        assert costs["ReservoirIncrementalEvaluator"] < costs["BaselineEvolvingEvaluator"]
        assert costs["StratifiedIncrementalEvaluator"] < costs["BaselineEvolvingEvaluator"]

    def test_stratified_reuses_all_base_annotations(self, evolving_base):
        evaluator = StratifiedIncrementalEvaluator(evolving_base, seed=5)
        evaluator.evaluate_base()
        triples_after_base = evaluator.annotator.total_triples_annotated
        batch, batch_oracle = make_update(evolving_base, 300, 0.9, seed=5)
        evaluator.apply_update(batch, batch_oracle)
        labelled_before = set(evaluator.annotator.labelled_triples) - set(batch.triples)
        new_triples = evaluator.annotator.total_triples_annotated - triples_after_base
        # Only triples of the new stratum are annotated after the update.
        newly_labelled = set(evaluator.annotator.labelled_triples) - labelled_before
        assert newly_labelled <= set(batch.triples)
        assert 0 < new_triples <= batch.size


class TestReservoirEvaluator:
    def test_reservoir_size_matches_units(self, evolving_base):
        evaluator = ReservoirIncrementalEvaluator(evolving_base, seed=0)
        evaluation = evaluator.evaluate_base()
        assert evaluator.reservoir_size == evaluation.report.num_units

    def test_replacements_bounded_by_insertions(self, evolving_base):
        evaluator = ReservoirIncrementalEvaluator(evolving_base, seed=1)
        evaluator.evaluate_base()
        batch, batch_oracle = make_update(evolving_base, 400, 0.9, seed=1)
        evaluator.apply_update(batch, batch_oracle)
        num_inserted_clusters = len(batch.entity_insertions())
        assert 0 <= evaluator.total_replacements <= num_inserted_clusters

    def test_larger_updates_cause_more_replacements(self, evolving_base):
        small_totals, large_totals = [], []
        for seed in range(3):
            small = ReservoirIncrementalEvaluator(evolving_base, seed=seed)
            small.evaluate_base()
            batch, oracle = make_update(evolving_base, 100, 0.9, seed=seed)
            small.apply_update(batch, oracle)
            small_totals.append(small.total_replacements)

            large = ReservoirIncrementalEvaluator(evolving_base, seed=seed)
            large.evaluate_base()
            batch, oracle = make_update(evolving_base, 1500, 0.9, seed=seed)
            large.apply_update(batch, oracle)
            large_totals.append(large.total_replacements)
        assert sum(large_totals) > sum(small_totals)

    def test_second_stage_cap_respected_in_reservoir(self, evolving_base):
        evaluator = ReservoirIncrementalEvaluator(evolving_base, second_stage_size=3, seed=2)
        evaluator.evaluate_base()
        assert all(len(entry.triples) <= 3 for _, _, entry in evaluator._reservoir)


class TestStratifiedEvaluator:
    def test_one_stratum_per_batch(self, evolving_base):
        evaluator = StratifiedIncrementalEvaluator(evolving_base, seed=3)
        evaluator.evaluate_base()
        for index in range(3):
            batch, batch_oracle = make_update(evolving_base, 150, 0.8, seed=20 + index)
            evaluator.apply_update(batch, batch_oracle)
        assert evaluator.num_strata == 4
        stratum_ids = [stratum_id for stratum_id, _ in evaluator.stratum_estimates()]
        assert stratum_ids[0] == "base"

    def test_min_units_per_stratum_enforced(self, evolving_base):
        evaluator = StratifiedIncrementalEvaluator(evolving_base, min_units_per_stratum=8, seed=4)
        evaluator.evaluate_base()
        batch, batch_oracle = make_update(evolving_base, 400, 0.9, seed=4)
        evaluator.apply_update(batch, batch_oracle)
        _, new_stratum_estimate = evaluator.stratum_estimates()[-1]
        assert new_stratum_estimate.num_units >= 8

    def test_invalid_min_units(self, evolving_base):
        with pytest.raises(ValueError):
            StratifiedIncrementalEvaluator(evolving_base, min_units_per_stratum=1)

    def test_combined_estimate_reflects_bad_update(self, evolving_base):
        """A very inaccurate, large update must pull the combined estimate down."""
        evaluator = StratifiedIncrementalEvaluator(evolving_base, seed=6)
        base_estimate = evaluator.evaluate_base().accuracy
        batch, batch_oracle = make_update(
            evolving_base, evolving_base.graph.num_triples, 0.1, seed=6
        )
        updated = evaluator.apply_update(batch, batch_oracle)
        assert updated.accuracy < base_estimate - 0.2


class TestMonitor:
    def test_run_produces_one_record_per_state(self, evolving_base):
        evaluator = StratifiedIncrementalEvaluator(evolving_base, seed=7)
        monitor = EvolvingAccuracyMonitor(evaluator)
        generator = UpdateWorkloadGenerator(evolving_base, seed=7)
        records = monitor.run(generator.generate_sequence(3, 150, 0.9))
        assert len(records) == 4
        assert records[0].batch_id == "base"
        assert [r.batch_index for r in records] == [0, 1, 2, 3]
        assert monitor.total_cost_hours == pytest.approx(
            records[-1].cumulative_cost_hours, rel=1e-6
        )

    def test_apply_update_lazily_evaluates_base(self, evolving_base):
        evaluator = ReservoirIncrementalEvaluator(evolving_base, seed=8)
        monitor = EvolvingAccuracyMonitor(evaluator)
        batch, batch_oracle = make_update(evolving_base, 100, 0.9, seed=8)
        record = monitor.apply_update(batch, batch_oracle)
        assert len(monitor.records) == 2
        assert record.batch_index == 1

    def test_records_track_truth_reasonably(self, evolving_base):
        evaluator = StratifiedIncrementalEvaluator(evolving_base, seed=9)
        monitor = EvolvingAccuracyMonitor(evaluator)
        generator = UpdateWorkloadGenerator(evolving_base, seed=9)
        records = monitor.run(generator.generate_sequence(3, 400, 0.5))
        final = records[-1]
        assert final.estimation_error < 0.12
        # The low-accuracy updates must drag the true accuracy down and the
        # estimate must follow.
        assert final.true_accuracy < records[0].true_accuracy
        assert final.estimated_accuracy < records[0].estimated_accuracy + 0.05
