"""Unit tests for TWCS, its theoretical variance (Eq. 10) and the optimal-m search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cost.model import CostModel
from repro.sampling.optimal import (
    OptimalSecondStage,
    expected_srs_cost_seconds,
    expected_twcs_cost_seconds,
    optimal_second_stage_size,
    required_srs_sample_size,
    required_twcs_cluster_draws,
)
from repro.sampling.twcs import TwoStageWeightedClusterDesign
from repro.sampling.variance import srs_variance, twcs_theoretical_variance, twcs_v_of_m


def annotate_and_update(design, units, oracle):
    for unit in units:
        labels = {triple: oracle.label(triple) for triple in unit.triples}
        design.update(unit, labels)


class TestTwoStageWeightedClusterDesign:
    def test_second_stage_cap_respected(self, toy_kg):
        graph, _ = toy_kg
        design = TwoStageWeightedClusterDesign(graph, second_stage_size=2, seed=0)
        for unit in design.draw(40):
            assert unit.num_triples <= 2
            assert unit.num_triples == min(2, graph.cluster_size(unit.entity_id))
            assert all(t.subject == unit.entity_id for t in unit.triples)

    def test_second_stage_without_replacement(self, toy_kg):
        graph, _ = toy_kg
        design = TwoStageWeightedClusterDesign(graph, second_stage_size=6, seed=0)
        for unit in design.draw(30):
            assert len(set(unit.triples)) == unit.num_triples

    def test_invalid_parameters(self, toy_graph):
        from repro.kg.graph import KnowledgeGraph

        with pytest.raises(ValueError):
            TwoStageWeightedClusterDesign(toy_graph, second_stage_size=0)
        with pytest.raises(ValueError):
            TwoStageWeightedClusterDesign(KnowledgeGraph(), second_stage_size=2)

    def test_estimator_is_mean_of_within_cluster_accuracies(self, toy_kg):
        graph, oracle = toy_kg
        design = TwoStageWeightedClusterDesign(graph, second_stage_size=3, seed=4)
        units = design.draw(12)
        annotate_and_update(design, units, oracle)
        expected = np.mean(
            [sum(oracle.label(t) for t in unit.triples) / unit.num_triples for unit in units]
        )
        assert design.estimate().value == pytest.approx(float(expected))

    def test_unbiasedness_proposition_1(self, nell):
        """Averaged over many runs, the TWCS estimate matches the true accuracy."""
        estimates = []
        for seed in range(300):
            design = TwoStageWeightedClusterDesign(nell.graph, second_stage_size=4, seed=seed)
            annotate_and_update(design, design.draw(25), nell.oracle)
            estimates.append(design.estimate().value)
        assert np.mean(estimates) == pytest.approx(nell.true_accuracy, abs=0.015)

    def test_m_equal_one_matches_srs_distribution(self, nell):
        """Proposition 2: with m=1 each cluster draw contributes a single
        Bernoulli triple whose success probability is the KG accuracy."""
        design = TwoStageWeightedClusterDesign(nell.graph, second_stage_size=1, seed=0)
        units = design.draw(4000)
        values = [nell.oracle.label(unit.triples[0]) for unit in units]
        assert all(unit.num_triples == 1 for unit in units)
        assert np.mean(values) == pytest.approx(nell.true_accuracy, abs=0.02)

    def test_reset(self, toy_kg):
        graph, oracle = toy_kg
        design = TwoStageWeightedClusterDesign(graph, second_stage_size=2, seed=0)
        annotate_and_update(design, design.draw(4), oracle)
        design.reset()
        assert design.estimate().num_units == 0


class TestTheoreticalVariance:
    def test_srs_variance(self):
        assert srs_variance(0.5) == pytest.approx(0.25)
        assert srs_variance(1.0) == 0.0
        with pytest.raises(ValueError):
            srs_variance(1.2)

    def test_v_of_m_validation(self):
        with pytest.raises(ValueError):
            twcs_v_of_m([1, 2], [0.5], 1)
        with pytest.raises(ValueError):
            twcs_v_of_m([], [], 1)
        with pytest.raises(ValueError):
            twcs_v_of_m([0], [0.5], 1)
        with pytest.raises(ValueError):
            twcs_v_of_m([2], [1.5], 1)
        with pytest.raises(ValueError):
            twcs_v_of_m([2], [0.5], 0)

    def test_homogeneous_population_has_only_within_cluster_term(self):
        # All clusters identical accuracy 0.5 and size 10, m=1:
        # V(m) = (1/M) * (1/m) * sum fpc * M_i * 0.25 with fpc = 9/9 = 1.
        sizes = [10] * 5
        accuracies = [0.5] * 5
        v = twcs_v_of_m(sizes, accuracies, 1)
        assert v == pytest.approx(0.25)

    def test_within_term_vanishes_when_m_exceeds_all_clusters(self):
        sizes = [3, 4, 5]
        accuracies = [0.2, 0.6, 1.0]
        v_large_m = twcs_v_of_m(sizes, accuracies, 10)
        total = sum(sizes)
        mu = sum(s * a for s, a in zip(sizes, accuracies)) / total
        between = sum(s * (a - mu) ** 2 for s, a in zip(sizes, accuracies)) / total
        assert v_large_m == pytest.approx(between)

    def test_variance_decreases_with_m(self):
        sizes = [20] * 10
        accuracies = [0.9, 0.8, 0.85, 0.7, 0.95, 0.9, 0.6, 0.88, 0.92, 0.75]
        values = [twcs_v_of_m(sizes, accuracies, m) for m in (1, 2, 5, 10, 20)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_variance_eq10_scales_inversely_with_draws(self):
        sizes = [5, 10, 15]
        accuracies = [0.5, 0.8, 0.9]
        single = twcs_theoretical_variance(sizes, accuracies, 3, 1)
        many = twcs_theoretical_variance(sizes, accuracies, 3, 10)
        assert many == pytest.approx(single / 10)
        with pytest.raises(ValueError):
            twcs_theoretical_variance(sizes, accuracies, 3, 0)

    def test_theoretical_variance_matches_simulation(self, nell):
        """Eq. (10) agrees with the empirical variance of the TWCS estimator."""
        sizes = [c.size for c in nell.graph.clusters()]
        accuracies = [nell.oracle.cluster_accuracy(nell.graph, e) for e in nell.graph.entity_ids]
        m, draws = 3, 20
        theoretical = twcs_theoretical_variance(sizes, accuracies, m, draws)
        estimates = []
        for seed in range(400):
            design = TwoStageWeightedClusterDesign(nell.graph, second_stage_size=m, seed=seed)
            units = design.draw(draws)
            annotate_and_update(design, units, nell.oracle)
            estimates.append(design.estimate().value)
        empirical = float(np.var(estimates, ddof=1))
        assert empirical == pytest.approx(theoretical, rel=0.25)


class TestCostObjectivesAndOptimalM:
    def test_expected_srs_cost_monotone_in_sample_size(self):
        sizes = [5] * 100
        model = CostModel()
        costs = [expected_srs_cost_seconds(sizes, n, model) for n in (10, 50, 100, 200)]
        assert all(a < b for a, b in zip(costs, costs[1:]))

    def test_expected_srs_cost_bounds(self):
        sizes = [5] * 100
        model = CostModel()
        cost = expected_srs_cost_seconds(sizes, 50, model)
        # At most one entity per sampled triple; at least one entity in total.
        assert cost <= 50 * model.identification_cost + 50 * model.validation_cost
        assert cost >= model.identification_cost + 50 * model.validation_cost
        with pytest.raises(ValueError):
            expected_srs_cost_seconds(sizes, -1, model)
        with pytest.raises(ValueError):
            expected_srs_cost_seconds([], 10, model)

    def test_expected_twcs_cost_formula(self):
        model = CostModel()
        assert expected_twcs_cost_seconds(10, 5, model) == pytest.approx(10 * (45 + 5 * 25))
        with pytest.raises(ValueError):
            expected_twcs_cost_seconds(-1, 5, model)

    def test_required_srs_sample_size(self):
        assert required_srs_sample_size(0.9, 0.05, 0.95) == 139
        assert required_srs_sample_size(0.5, 0.05, 0.95) == 385

    def test_required_twcs_draws_decreases_with_m(self):
        sizes = [20] * 50
        accuracies = list(np.linspace(0.5, 1.0, 50))
        draws = [required_twcs_cluster_draws(sizes, accuracies, m, 0.05, 0.95) for m in (1, 3, 10)]
        assert draws[0] >= draws[1] >= draws[2]
        with pytest.raises(ValueError):
            required_twcs_cluster_draws(sizes, accuracies, 1, 0.0, 0.95)

    def test_optimal_m_in_paper_range_for_nell_like_population(self, nell):
        sizes = [c.size for c in nell.graph.clusters()]
        accuracies = [nell.oracle.cluster_accuracy(nell.graph, e) for e in nell.graph.entity_ids]
        optimum = optimal_second_stage_size(sizes, accuracies, CostModel())
        assert isinstance(optimum, OptimalSecondStage)
        # Section 7.2.2: the optimum falls in a small range (roughly 2-8).
        assert 2 <= optimum.second_stage_size <= 8
        assert optimum.expected_cost_seconds == min(optimum.cost_by_m.values())
        assert optimum.expected_cost_hours == pytest.approx(optimum.expected_cost_seconds / 3600)

    def test_optimal_m_is_one_for_homogeneous_singleton_clusters(self):
        # All clusters of size 1: the second stage cannot help, m=1 is optimal.
        optimum = optimal_second_stage_size([1] * 100, [0.8] * 100, CostModel())
        assert optimum.second_stage_size == 1

    def test_optimal_m_validation(self):
        with pytest.raises(ValueError):
            optimal_second_stage_size([1], [0.5], CostModel(), max_second_stage_size=0)

    def test_cost_by_m_has_all_candidates(self):
        optimum = optimal_second_stage_size(
            [5, 10, 20], [0.5, 0.9, 0.8], CostModel(), max_second_stage_size=7
        )
        assert set(optimum.cost_by_m) == set(range(1, 8))
