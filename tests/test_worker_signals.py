"""Worker shutdown-signal regression: SIGINT must export metrics too.

``repro worker`` converts SIGTERM into an orderly ``SystemExit`` so that
``--metrics-out`` gets written by ``main()``'s finally block.  SIGINT (an
interactive Ctrl-C) historically unwound as a ``KeyboardInterrupt`` from an
arbitrary bytecode boundary instead, silently dropping the snapshot.  Both
signals now share the handler; this suite pins that for each one the worker
exits 0 and its metrics file exists with the right meta.
"""

from __future__ import annotations

import json
import signal
import time

import pytest
from rpc_chaos import WorkerProcess

pytestmark = [pytest.mark.rpc]


@pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
@pytest.mark.timeout(60)
def test_worker_exports_metrics_on_shutdown_signal(tmp_path, signum):
    worker = WorkerProcess(tmp_path / "cache", name=f"sig-{signum.name.lower()}")
    try:
        # Let the worker settle into its accept loop before interrupting it.
        time.sleep(0.5)
        worker.proc.send_signal(signum)
        assert worker.proc.wait(timeout=30) == 0
    finally:
        worker.stop()
    assert worker.metrics_path.is_file(), (
        f"{signum.name} shutdown dropped the --metrics-out snapshot"
    )
    snapshot = json.loads(worker.metrics_path.read_text())
    assert snapshot["meta"]["command"] == "worker"
