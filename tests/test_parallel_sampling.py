"""Determinism and parity of the sharded parallel sampling engine.

The engine's contract (see :mod:`repro.sampling.parallel`): for a fixed
``(graph, labels, design, plan, seed)`` the estimates and Eq. (4) cost are
bit-identical whether shard tasks run in-process, on a 2-worker pool or a
3-worker pool, on either storage backend.  Pool-backed tests carry the
``parallel`` marker so CI can run them as a dedicated leg.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core.config import EvaluationConfig
from repro.evolving.reservoir_eval import ReservoirIncrementalEvaluator
from repro.evolving.stratified_eval import StratifiedIncrementalEvaluator
from repro.generators.datasets import LabelledKG, make_nell_like
from repro.generators.workload import UpdateWorkloadGenerator
from repro.sampling.parallel import PARALLEL_DESIGNS, ParallelSamplingExecutor
from repro.sampling.segment import PositionSegment
from repro.sampling.stratification import stratify_by_size
from repro.stats.allocation import proportional_allocation

_CONFIG = EvaluationConfig(moe_target=0.06)


@pytest.fixture(scope="module")
def labelled():
    data = make_nell_like(seed=0)
    graph = data.graph.to_columnar()
    return LabelledKG(graph, data.oracle), data.oracle.as_position_array(graph)


def _run_result(graph, labels, design, *, workers, num_shards, seed, units=250, **kwargs):
    with ParallelSamplingExecutor(graph, workers=workers, num_shards=num_shards) as executor:
        run = executor.run(design, labels, seed=seed, **kwargs)
        while run.num_units < units:
            before = run.num_units
            run.step(min(50, units - run.num_units))
            if run.num_units == before:
                break
        return run.estimate(), run.cost_summary(), run.shard_stats()


class TestSerialEngine:
    """Sharded-but-in-process behaviour (no pools; always runs)."""

    @pytest.mark.parametrize("design", PARALLEL_DESIGNS)
    def test_deterministic_and_tracks_truth(self, labelled, design):
        data, labels = labelled
        first = _run_result(data.graph, labels, design, workers=None, num_shards=4, seed=9)
        second = _run_result(data.graph, labels, design, workers=None, num_shards=4, seed=9)
        assert first[0] == second[0]
        assert first[1] == second[1]
        assert abs(first[0].value - labels.mean()) < 0.12

    def test_seed_and_plan_are_part_of_the_stream(self, labelled):
        data, labels = labelled
        base = _run_result(data.graph, labels, "twcs", workers=None, num_shards=4, seed=9)
        other_seed = _run_result(data.graph, labels, "twcs", workers=None, num_shards=4, seed=10)
        other_plan = _run_result(data.graph, labels, "twcs", workers=None, num_shards=2, seed=9)
        assert base[0] != other_seed[0]
        assert base[0] != other_plan[0]

    def test_memory_and_columnar_backends_draw_identically(self):
        data = make_nell_like(seed=0)
        memory_labels = data.oracle.as_position_array(data.graph)
        columnar = data.graph.to_columnar()
        columnar_labels = data.oracle.as_position_array(columnar)
        for design in PARALLEL_DESIGNS:
            mem = _run_result(data.graph, memory_labels, design, workers=None, num_shards=3, seed=4)
            col = _run_result(columnar, columnar_labels, design, workers=None, num_shards=3, seed=4)
            assert mem[0] == col[0], design
            assert mem[1] == col[1], design

    def test_empty_graph_plan_yields_empty_run(self, labelled):
        from repro.storage.shard import ShardPlan

        data, labels = labelled
        empty_plan = ShardPlan.from_offsets(np.zeros(1, dtype=np.int64), 4)
        with ParallelSamplingExecutor(data.graph, workers=None) as executor:
            run = executor.run("twcs", labels, seed=0, plan=empty_plan)
            assert run.step(10) == []
            assert run.exhausted
            estimate = run.estimate()
            assert estimate.num_units == 0 and estimate.std_error == float("inf")

    def test_wor_designs_exhaust_cleanly(self, labelled):
        data, labels = labelled
        with ParallelSamplingExecutor(data.graph, workers=None, num_shards=3) as executor:
            run = executor.run("rcs", labels, seed=1)
            total = 0
            while not run.exhausted:
                total += sum(d.num_units for d in run.step(200))
            assert total == data.graph.num_entities
            assert run.step(10) == []
            srs = executor.run("srs", labels, seed=1)
            while not srs.exhausted:
                srs.step(1000)
            assert srs.estimate().num_triples == data.graph.num_triples
            assert srs.estimate().value == pytest.approx(labels.mean())

    def test_interleaved_executors_on_one_transport_are_rejected(self, labelled):
        """A re-bound transport must refuse the stale executor, not mis-draw."""
        from repro.generators.datasets import make_yago_like
        from repro.sampling.parallel import SerialTransport

        data, labels = labelled
        other = make_yago_like(seed=0)
        other_graph = other.graph.to_columnar()
        transport = SerialTransport()
        first = ParallelSamplingExecutor(data.graph, num_shards=2, transport=transport)
        run = first.run("twcs", labels, seed=0)
        run.step(10)  # healthy while solely bound
        ParallelSamplingExecutor(other_graph, num_shards=2, transport=transport)
        with pytest.raises(RuntimeError, match="re-bound"):
            run.step(10)

    def test_segment_run_covers_only_the_segment(self, labelled):
        data, labels = labelled
        first_position = data.graph.num_triples
        triples = [t for t in list(data.graph)[:40]]
        segment = PositionSegment.from_batch(triples, [True] * len(triples), first_position)
        seg_labels = np.concatenate([labels, np.ones(len(triples), dtype=bool)])
        with ParallelSamplingExecutor(data.graph, workers=None, num_shards=3) as executor:
            run = executor.run("twcs", seg_labels, seed=2, segment=segment)
            draws = run.step(30)
            drawn = np.concatenate([d.positions for d in draws])
            assert drawn.min() >= first_position
            assert run.estimate().value == 1.0  # segment labels are all True

    def test_segment_cost_counts_distinct_clusters_across_shards(self, labelled):
        """Entity identification is keyed by segment cluster, not shard-local index."""
        data, labels = labelled
        first_position = data.graph.num_triples
        triples = [t for t in list(data.graph)[:60]]
        segment = PositionSegment.from_batch(triples, [True] * len(triples), first_position)
        seg_labels = np.concatenate([labels, np.ones(len(triples), dtype=bool)])
        with ParallelSamplingExecutor(data.graph, workers=None, num_shards=4) as executor:
            run = executor.run("twcs", seg_labels, seed=2, segment=segment)
            drawn_clusters: set[int] = set()
            while not all(c in drawn_clusters for c in range(segment.num_clusters)):
                draws = run.step(50)
                for draw in draws:
                    drawn_clusters.update(int(r) for r in draw.rows)
            assert run.cost_summary().entities_identified == segment.num_clusters

    def test_strata_over_row_subset_costs_use_global_rows(self, labelled):
        """A stratified run over a tail row subset must not crash or collide."""
        data, labels = labelled
        num_entities = data.graph.num_entities
        rows = [
            np.arange(num_entities - 60, num_entities - 30, dtype=np.int64),
            np.arange(num_entities - 30, num_entities, dtype=np.int64),
        ]
        with ParallelSamplingExecutor(data.graph, workers=None, num_shards=4) as executor:
            run = executor.run("twcs", labels, seed=6, strata=rows)
            drawn_rows: set[int] = set()
            for _ in range(8):
                for draw in run.step(40):
                    drawn_rows.update(int(r) for r in draw.rows)
            assert min(drawn_rows) >= num_entities - 60
            assert run.cost_summary().entities_identified == len(drawn_rows)


class TestNeymanAllocation:
    """allocation='neyman' routed through shard-merged per-stratum stats."""

    @staticmethod
    def _strata_rows(graph):
        strata = stratify_by_size(graph, num_strata=3)
        rows = [
            np.fromiter(
                (graph.entity_row(e) for e in stratum.entity_ids),
                dtype=np.int64,
                count=stratum.num_entities,
            )
            for stratum in strata
        ]
        return strata, rows

    def test_requires_strata(self, labelled):
        data, labels = labelled
        with ParallelSamplingExecutor(data.graph, workers=None) as executor:
            with pytest.raises(ValueError, match="neyman"):
                executor.run("twcs", labels, seed=0, allocation="neyman")
            with pytest.raises(ValueError, match="allocation"):
                executor.run("twcs", labels, seed=0, allocation="optimal")

    def test_allocation_decisions_match_design_rule(self, labelled):
        """Same observed per-stratum stats → same split as StratifiedTWCSDesign.

        The engine merges each stratum's *shard* accumulators before applying
        the Neyman rule; feeding identical observations (scattered across a
        stratum's shard tasks) must reproduce the in-process design's
        allocation exactly, including the proportional fallback while any
        stratum has fewer than two draws.
        """
        from repro.sampling.stratified import StratifiedTWCSDesign

        data, labels = labelled
        graph = data.graph
        strata, rows = self._strata_rows(graph)
        design = StratifiedTWCSDesign(
            graph, strata, second_stage_size=5, seed=0, allocation="neyman"
        )
        with ParallelSamplingExecutor(graph, workers=None, num_shards=4) as executor:
            run = executor.run(
                "twcs", labels, seed=0, strata=rows, allocation="neyman"
            )
            observations = {
                0: [0.2, 0.9, 0.5, 0.7],
                1: [1.0, 0.0, 0.65],
                2: [0.45, 0.55, 0.8, 0.3, 0.9],
            }
            # Fallback while stratum 2 has < 2 observations on both sides.
            design._means[0].add(0.2)
            task_of = {}
            for task_id, stratum in enumerate(run._task_strata):
                task_of.setdefault(stratum, []).append(task_id)
            run._accumulators[task_of[0][0]].add(0.2)
            assert run._stratum_allocation(30) == design._allocate(30)
            # Full stats: scatter each stratum's values across its shard tasks.
            for stratum, values in observations.items():
                for index, value in enumerate(values):
                    if index or stratum != 0:  # 0.2 already added above
                        design._means[stratum].add(value)
                        tasks = task_of[stratum]
                        run._accumulators[tasks[index % len(tasks)]].add(value)
            for count in (1, 7, 30, 100):
                assert run._stratum_allocation(count) == design._allocate(count)
            # And the rule is genuinely Neyman: differs from proportional here.
            assert run._stratum_allocation(100) != proportional_allocation(
                run._stratum_weights, 100
            )

    def test_neyman_run_is_deterministic_and_tracks_truth(self, labelled):
        data, labels = labelled
        _, rows = self._strata_rows(data.graph)
        results = [
            _run_result(
                data.graph,
                labels,
                "twcs",
                workers=None,
                num_shards=3,
                seed=41,
                strata=rows,
                allocation="neyman",
            )
            for _ in range(2)
        ]
        assert results[0][0] == results[1][0]
        assert results[0][1] == results[1][1]
        assert abs(results[0][0].value - labels.mean()) < 0.12


@pytest.mark.parallel
class TestPoolParity:
    """Process-pool execution is bit-identical to the serial reference."""

    @pytest.mark.parametrize("design", PARALLEL_DESIGNS)
    def test_pool_matches_serial(self, labelled, design):
        data, labels = labelled
        serial = _run_result(data.graph, labels, design, workers=None, num_shards=4, seed=21)
        pooled = _run_result(data.graph, labels, design, workers=2, num_shards=4, seed=21)
        assert serial[0] == pooled[0]
        assert serial[1] == pooled[1]

    def test_worker_count_does_not_matter(self, labelled):
        data, labels = labelled
        results = [
            _run_result(data.graph, labels, "twcs", workers=workers, num_shards=5, seed=33)
            for workers in (None, 1, 2, 3)
        ]
        assert all(result[0] == results[0][0] for result in results[1:])
        assert all(result[1] == results[0][1] for result in results[1:])

    def test_stratified_pool_matches_serial(self, labelled):
        data, labels = labelled
        graph = data.graph
        strata = stratify_by_size(graph, num_strata=3)
        rows = [
            np.fromiter(
                (graph.entity_row(e) for e in stratum.entity_ids),
                dtype=np.int64,
                count=stratum.num_entities,
            )
            for stratum in strata
        ]
        serial = _run_result(
            graph, labels, "twcs", workers=None, num_shards=4, seed=8, strata=rows
        )
        pooled = _run_result(graph, labels, "twcs", workers=2, num_shards=4, seed=8, strata=rows)
        assert serial[0] == pooled[0]
        assert serial[1] == pooled[1]

    def test_neyman_pool_matches_serial(self, labelled):
        data, labels = labelled
        _, rows = TestNeymanAllocation._strata_rows(data.graph)
        serial = _run_result(
            data.graph,
            labels,
            "twcs",
            workers=None,
            num_shards=4,
            seed=19,
            strata=rows,
            allocation="neyman",
        )
        pooled = _run_result(
            data.graph,
            labels,
            "twcs",
            workers=2,
            num_shards=4,
            seed=19,
            strata=rows,
            allocation="neyman",
        )
        assert serial[0] == pooled[0]
        assert serial[1] == pooled[1]

    def test_graph_batch_sampler_executor_wiring(self, labelled):
        """sample_cluster_positions_batch(executor=) fans out deterministically."""
        data, labels = labelled
        graph = data.graph
        rows = np.random.default_rng(1).integers(0, graph.num_entities, size=40)
        batches = []
        for workers in (None, 2):
            with ParallelSamplingExecutor(graph, workers=workers, num_shards=4) as executor:
                rng = np.random.default_rng(99)
                batches.append(
                    graph.sample_cluster_positions_batch(rows, 5, rng, executor=executor)
                )
                # The executor path consumes exactly one value off the caller's
                # stream (the fan-out entropy), regardless of the batch size.
                reference = np.random.default_rng(99)
                reference.integers(np.iinfo(np.int64).max)
                assert rng.bit_generator.state == reference.bit_generator.state
        sizes = graph.cluster_size_array()
        for row, first, second in zip(rows, batches[0], batches[1]):
            np.testing.assert_array_equal(first, second)
            assert first.shape[0] == min(5, int(sizes[row]))

    def test_sample_rows_parity_and_order(self, labelled):
        data, labels = labelled
        rows = np.random.default_rng(0).integers(0, data.graph.num_entities, size=64)
        with ParallelSamplingExecutor(data.graph, workers=None, num_shards=4) as serial:
            reference = serial.sample_rows(rows, 5, seed=17)
        with ParallelSamplingExecutor(data.graph, workers=3, num_shards=4) as pooled:
            fanned = pooled.sample_rows(rows, 5, seed=17)
        assert len(reference) == rows.shape[0]
        sizes = data.graph.cluster_size_array()
        for row, ref, fan in zip(rows, reference, fanned):
            np.testing.assert_array_equal(ref, fan)
            assert ref.shape[0] == min(5, int(sizes[row]))

    def test_pool_transport_rebind_refreshes_worker_attachment(self, labelled):
        """Reusing one ProcessPoolTransport across graphs must re-attach.

        The pool workers captured the first graph's CSR at creation; binding
        a second executor tears the stale pool down so the second run can
        never draw from the wrong index.
        """
        from repro.generators.datasets import make_yago_like
        from repro.sampling.parallel import ProcessPoolTransport

        data, labels = labelled
        other = make_yago_like(seed=0)
        other_graph = other.graph.to_columnar()
        other_labels = other.oracle.as_position_array(other_graph)
        transport = ProcessPoolTransport(2)
        try:
            for graph, label_array in (
                (data.graph, labels),
                (other_graph, other_labels),
            ):
                executor = ParallelSamplingExecutor(
                    graph, num_shards=3, transport=transport
                )
                run = executor.run("twcs", label_array, seed=14)
                while run.num_units < 150:
                    run.step(50)
                reference = _run_result(
                    graph, label_array, "twcs", workers=None, num_shards=3, seed=14, units=150
                )
                assert (run.estimate(), run.cost_summary()) == reference[:2]
        finally:
            transport.close()

    def test_snapshot_attached_pool_matches_inherited(self, labelled, tmp_path):
        data, labels = labelled
        snap = tmp_path / "kg-dir"
        data.graph.save_snapshot(snap)
        inherited = _run_result(data.graph, labels, "twcs", workers=2, num_shards=4, seed=5)
        with ParallelSamplingExecutor(
            data.graph, workers=2, num_shards=4, snapshot=snap
        ) as executor:
            run = executor.run("twcs", labels, seed=5)
            while run.num_units < 250:
                run.step(50)
            assert (run.estimate(), run.cost_summary()) == inherited[:2]


@pytest.mark.parallel
class TestPoolWarmRegistry:
    """keep_alive parking: pinning, adoption, and the bounded LRU."""

    @pytest.fixture(autouse=True)
    def _clean_registry(self):
        from repro.sampling import parallel

        parallel.shutdown_warm_pools()
        yield
        parallel.shutdown_warm_pools()

    def _run(self, graph, labels, transport, seed=13):
        with ParallelSamplingExecutor(graph, num_shards=2, transport=transport) as executor:
            run = executor.run("twcs", labels, seed=seed)
            run.step(40)
            return run.estimate()

    def test_park_pins_arrays_and_adoption_matches_serial(self, labelled):
        from repro.sampling import parallel
        from repro.sampling.parallel import ProcessPoolTransport

        data, labels = labelled
        first = self._run(data.graph, labels, ProcessPoolTransport(2, keep_alive=True))
        assert len(parallel._WARM_POOLS) == 1
        # The parked entry itself holds strong references to the bound CSR
        # arrays (not just the fork-mode registry): this is what keeps the
        # id()-based warm key unambiguous under every start method.
        ((key, (_pool, _attach, pinned)),) = parallel._WARM_POOLS.items()
        offsets, positions = data.graph.backend.csr_arrays()
        assert pinned[0] is offsets and pinned[1] is positions
        assert key[2] == id(offsets) and key[3] == id(positions)
        second = self._run(data.graph, labels, ProcessPoolTransport(2, keep_alive=True))
        assert second == first
        serial = self._run(data.graph, labels, None)
        assert second == serial

    def test_registry_is_lru_bounded(self, labelled):
        from repro.generators.datasets import make_yago_like
        from repro.sampling import parallel
        from repro.sampling.parallel import ProcessPoolTransport

        data, labels = labelled
        graphs = [(data.graph, labels)]
        for seed in (1, 2):
            other = make_yago_like(seed=seed)
            graph = other.graph.to_columnar()
            graphs.append((graph, other.oracle.as_position_array(graph)))
        for graph, graph_labels in graphs:
            self._run(graph, graph_labels, ProcessPoolTransport(2, keep_alive=True))
        # Three graphs parked three pools; the cap keeps only the newest
        # two alive (plus their registry attachments).
        assert len(parallel._WARM_POOLS) == parallel._WARM_POOL_LIMIT == 2
        assert len(parallel._ATTACH_REGISTRY) <= parallel._WARM_POOL_LIMIT
        newest_two = {
            (id(graph.backend.csr_arrays()[0]), id(graph.backend.csr_arrays()[1]))
            for graph, _ in graphs[-2:]
        }
        assert {key[2:] for key in parallel._WARM_POOLS} == newest_two


@pytest.mark.parallel
class TestEvolvingWorkers:
    """workers= wiring through the evolving evaluators."""

    def _trajectory(self, cls, base, updates, workers, num_shards):
        evaluator = cls(
            base,
            config=_CONFIG,
            seed=13,
            surface="position",
            workers=workers,
            num_shards=num_shards,
        )
        try:
            evaluator.evaluate_base()
            for batch, batch_oracle in updates:
                evaluator.apply_update(batch, batch_oracle)
            return [
                (e.batch_id, e.accuracy, e.report.margin_of_error, e.cumulative_cost_seconds)
                for e in evaluator.history
            ]
        finally:
            evaluator.close()

    @pytest.mark.parametrize("cls", [StratifiedIncrementalEvaluator, ReservoirIncrementalEvaluator])
    def test_pool_trajectory_matches_sharded_serial(self, cls):
        data = make_nell_like(seed=0)
        base = LabelledKG(data.graph.to_columnar(), data.oracle)
        workload = UpdateWorkloadGenerator(base, seed=5)
        updates = list(workload.generate_sequence(3, 120, 0.8))
        serial = self._trajectory(cls, base, updates, workers=0, num_shards=3)
        pooled = self._trajectory(cls, base, updates, workers=2, num_shards=3)
        assert serial == pooled
        # The trajectory still tracks the evolving ground truth.
        final_estimate = serial[-1][1]
        evaluator = cls(base, config=_CONFIG, seed=13, surface="position")
        evaluator.evaluate_base()
        for batch, batch_oracle in updates:
            evaluator.apply_update(batch, batch_oracle)
        assert abs(final_estimate - evaluator.current_true_accuracy()) < 0.1

    def test_workers_requires_position_surface(self):
        data = make_nell_like(seed=0)
        with pytest.raises(ValueError, match="position"):
            StratifiedIncrementalEvaluator(data, seed=0, workers=2)


@pytest.mark.parallel
class TestCliWorkers:
    def test_evaluate_workers_parity(self, capsys):
        outputs = []
        for workers in ("0", "2"):
            code = cli_main(
                [
                    "evaluate",
                    "--dataset",
                    "nell",
                    "--workers",
                    workers,
                    "--shards",
                    "3",
                    "--seed",
                    "3",
                ]
            )
            assert code == 0
            outputs.append(
                capsys.readouterr().out.replace("transport=serial", "transport=X").replace(
                    "transport=pool", "transport=X"
                )
            )
        assert outputs[0] == outputs[1]

    def test_monitor_workers_smoke(self):
        code = cli_main(
            [
                "monitor",
                "--dataset",
                "nell",
                "--backend",
                "columnar",
                "--evaluator",
                "ss",
                "--batches",
                "2",
                "--seed",
                "0",
                "--workers",
                "2",
            ]
        )
        assert code == 0

    def test_monitor_workers_rejects_object_surface(self):
        with pytest.raises(SystemExit):
            cli_main(
                [
                    "monitor",
                    "--dataset",
                    "nell",
                    "--evaluator",
                    "ss",
                    "--batches",
                    "1",
                    "--workers",
                    "2",
                ]
            )
