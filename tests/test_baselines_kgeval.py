"""Unit tests for the coupling graph and the KGEval baseline."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.baselines.coupling import CouplingGraphBuilder
from repro.baselines.kgeval import KGEvalBaseline
from repro.cost.annotator import SimulatedAnnotator
from repro.kg.graph import KnowledgeGraph
from repro.kg.triple import Triple
from repro.labels.oracle import LabelOracle


class TestCouplingGraphBuilder:
    def test_every_triple_is_a_node(self, toy_graph):
        graph = CouplingGraphBuilder(seed=0).build(toy_graph)
        assert graph.number_of_nodes() == toy_graph.num_triples

    def test_same_subject_predicate_triples_are_coupled(self):
        kg = KnowledgeGraph(
            [
                Triple("e1", "bornIn", "NYC"),
                Triple("e1", "bornIn", "LA"),
                Triple("e2", "diedIn", "Rome"),
            ]
        )
        coupling = CouplingGraphBuilder(seed=0).build(kg)
        assert coupling.has_edge(Triple("e1", "bornIn", "NYC"), Triple("e1", "bornIn", "LA"))

    def test_same_predicate_object_triples_are_coupled(self):
        kg = KnowledgeGraph(
            [
                Triple("e1", "bornIn", "NYC"),
                Triple("e2", "bornIn", "NYC"),
                Triple("e3", "diedIn", "Rome"),
            ]
        )
        coupling = CouplingGraphBuilder(seed=0).build(kg)
        assert coupling.has_edge(Triple("e1", "bornIn", "NYC"), Triple("e2", "bornIn", "NYC"))

    def test_entity_cluster_triples_are_coupled(self, toy_graph):
        coupling = CouplingGraphBuilder(seed=0).build(toy_graph)
        cluster = list(toy_graph.cluster("athlete_1"))
        assert coupling.has_edge(cluster[0], cluster[1])

    def test_edge_weights_accumulate(self):
        kg = KnowledgeGraph([Triple("e1", "p", "o"), Triple("e1", "p", "o2")])
        builder = CouplingGraphBuilder(
            subject_predicate_weight=1.0, entity_weight=0.5, predicate_weight=0.0, seed=0
        )
        coupling = builder.build(kg)
        weight = coupling[Triple("e1", "p", "o")][Triple("e1", "p", "o2")]["weight"]
        # subject-predicate (1.0) + entity (0.5) couplings stack.
        assert weight == pytest.approx(1.5)

    def test_large_groups_connected_sparsely(self):
        triples = [Triple(f"e{i}", "sharedPredicate", f"o{i}") for i in range(200)]
        kg = KnowledgeGraph(triples)
        builder = CouplingGraphBuilder(max_group_size=30, sparse_degree=2, seed=0)
        coupling = builder.build(kg)
        # A clique over 200 nodes would have ~19 900 edges; the sparse
        # connection keeps it linear in the group size.
        assert coupling.number_of_edges() < 200 * 4
        assert nx.number_of_isolates(coupling) == 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CouplingGraphBuilder(max_group_size=1)
        with pytest.raises(ValueError):
            CouplingGraphBuilder(sparse_degree=0)


class TestKGEvalBaseline:
    def test_parameter_validation(self, toy_kg):
        graph, oracle = toy_kg
        annotator = SimulatedAnnotator(oracle)
        with pytest.raises(ValueError):
            KGEvalBaseline(graph, annotator, coverage_target=0.0)
        with pytest.raises(ValueError):
            KGEvalBaseline(graph, annotator, inference_threshold=0.0)
        with pytest.raises(ValueError):
            KGEvalBaseline(graph, annotator, propagation_decay=0.0)

    def test_runs_on_toy_graph_and_reaches_coverage(self, toy_kg):
        graph, oracle = toy_kg
        annotator = SimulatedAnnotator(oracle)
        baseline = KGEvalBaseline(graph, annotator, coverage_target=0.9)
        result = baseline.run()
        assert result.coverage >= 0.9
        assert 0.0 <= result.estimated_accuracy <= 1.0
        assert result.num_annotated + result.num_inferred >= 0.9 * graph.num_triples
        assert result.annotation_cost_seconds == pytest.approx(annotator.total_cost_seconds)

    def test_annotation_budget_respected(self, nell):
        annotator = SimulatedAnnotator(nell.oracle)
        baseline = KGEvalBaseline(nell.graph, annotator, max_annotations=10)
        result = baseline.run()
        assert result.num_annotated <= 10

    def test_inference_propagates_labels(self, nell):
        annotator = SimulatedAnnotator(nell.oracle)
        baseline = KGEvalBaseline(nell.graph, annotator, coverage_target=0.8)
        result = baseline.run()
        # The whole point of KGEval: far fewer annotations than covered triples.
        assert result.num_inferred > result.num_annotated
        assert result.num_annotated < 0.5 * nell.graph.num_triples

    def test_estimate_roughly_tracks_truth_on_nell(self, nell):
        annotator = SimulatedAnnotator(nell.oracle)
        baseline = KGEvalBaseline(nell.graph, annotator, coverage_target=0.85)
        result = baseline.run()
        # No statistical guarantee (that is the paper's criticism), but the
        # propagation should not be wildly off on a 91%-accurate KG.
        assert abs(result.estimated_accuracy - nell.true_accuracy) < 0.15

    def test_machine_time_recorded(self, toy_kg):
        graph, oracle = toy_kg
        baseline = KGEvalBaseline(graph, SimulatedAnnotator(oracle))
        result = baseline.run()
        assert result.machine_time_seconds > 0.0
        assert result.annotation_cost_hours == pytest.approx(result.annotation_cost_seconds / 3600)

    def test_zero_coupling_degenerates_to_exhaustive_annotation(self):
        """With no coupling evidence the baseline must annotate (almost) everything."""
        triples = [Triple(f"e{i}", f"p{i}", f"o{i}") for i in range(20)]
        kg = KnowledgeGraph(triples)
        oracle = LabelOracle({t: True for t in triples})
        builder = CouplingGraphBuilder(
            subject_predicate_weight=0.0,
            predicate_object_weight=0.0,
            entity_weight=0.0,
            predicate_weight=0.0,
            seed=0,
        )
        baseline = KGEvalBaseline(
            kg, SimulatedAnnotator(oracle), builder=builder, coverage_target=1.0
        )
        result = baseline.run()
        assert result.num_annotated == 20
        assert result.num_inferred == 0
        assert result.estimated_accuracy == 1.0
