"""Tests for the experiment harness: trial aggregation, reporting and per-figure functions.

The per-table/figure functions are exercised at deliberately tiny scales and
trial counts — these tests check the *shape* of the returned data (one row per
configuration, expected columns present, values in sensible ranges), not the
paper's numbers; the benchmark suite regenerates the actual tables.
"""

from __future__ import annotations

import pytest

from repro.experiments.evolving_experiments import figure8_single_update, figure9_update_sequence
from repro.experiments.harness import TrialStatistics, aggregate, run_trials
from repro.experiments.report import format_table, format_value
from repro.experiments.static_experiments import (
    figure1_cost_curves,
    figure3_accuracy_vs_size,
    figure4_cost_fit,
    figure5_confidence_sweep,
    figure6_optimal_m,
    figure7_scalability,
    table4_movie_cost,
    table5_static_comparison,
    table6_kgeval_comparison,
    table7_stratification,
)


class TestHarness:
    def test_aggregate_statistics(self):
        stats = aggregate([1.0, 2.0, 3.0])
        assert stats.mean == pytest.approx(2.0)
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0
        assert stats.num_trials == 3
        assert stats.std == pytest.approx(1.0)

    def test_aggregate_single_value(self):
        stats = aggregate([5.0])
        assert stats.std == 0.0
        with pytest.raises(ValueError):
            aggregate([])

    def test_run_trials_aggregates_per_metric(self):
        def trial(seed: int) -> dict[str, float]:
            return {"value": float(seed), "constant": 1.0}

        stats = run_trials(trial, num_trials=4, base_seed=10)
        assert set(stats) == {"value", "constant"}
        assert stats["value"].mean == pytest.approx(11.5)
        assert stats["constant"].std == 0.0
        assert isinstance(stats["value"], TrialStatistics)

    def test_run_trials_validation(self):
        with pytest.raises(ValueError):
            run_trials(lambda seed: {"x": 1.0}, num_trials=0)

    def test_run_trials_rejects_inconsistent_metrics(self):
        def trial(seed: int) -> dict[str, float]:
            return {"a": 1.0} if seed % 2 == 0 else {"b": 1.0}

        with pytest.raises(ValueError):
            run_trials(trial, num_trials=2)


class TestReport:
    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(0.12345) == "0.123"
        assert format_value("text") == "text"

    def test_format_table_alignment_and_columns(self):
        rows = [{"a": 1.0, "b": "x"}, {"a": 2.5, "b": "longer"}]
        table = format_table(rows, title="demo")
        lines = table.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_missing_keys_and_empty(self):
        assert format_table([], title="empty") == "empty"
        table = format_table([{"a": 1}, {"b": 2}], columns=["a", "b"])
        assert "a" in table


class TestStaticExperimentShapes:
    def test_table3_characteristics(self):
        from repro.experiments import table3_dataset_characteristics

        rows = table3_dataset_characteristics(seed=0, movie_scale=0.005)
        assert {row["dataset"] for row in rows} == {"NELL-like", "YAGO-like", "MOVIE-like"}
        for row in rows:
            assert row["num_entities"] > 0
            assert row["num_triples"] >= row["num_entities"]
            assert 0.0 <= row["gold_accuracy"] <= 1.0
            assert abs(row["gold_accuracy"] - row["paper_accuracy"]) < 0.05

    def test_figure1_curves(self):
        result = figure1_cost_curves(seed=0, num_triples=20, movie_scale=0.005)
        assert len(result.triple_level_seconds) == 20
        assert len(result.entity_level_seconds) == 20
        # Entity-level tasks are cheaper in total.
        assert result.entity_level_seconds[-1] < result.triple_level_seconds[-1]
        assert result.entity_level_num_entities < 20
        assert result.triple_level_total_hours > result.entity_level_total_hours

    def test_figure3_correlations_positive(self):
        result = figure3_accuracy_vs_size(seed=0)
        assert set(result) == {"NELL", "YAGO"}
        assert result["NELL"]["correlation"] > 0.0
        assert len(result["NELL"]["points"]) == 817

    def test_figure4_fit_recovers_parameters(self):
        result = figure4_cost_fit(seed=0, num_tasks=10, movie_scale=0.005)
        assert result.fit.identification_cost == pytest.approx(45.0, rel=0.4)
        assert result.fit.validation_cost == pytest.approx(25.0, rel=0.4)
        assert result.fit.r_squared > 0.8
        assert len(result.predicted_seconds) == len(result.observations)

    def test_table4_rows(self):
        rows = table4_movie_cost(num_trials=2, seed=0, movie_scale=0.005)
        assert len(rows) == 2
        assert rows[0]["method"] == "SRS"
        assert "annotation_hours" in rows[0]
        assert all(row["accuracy_estimate"] <= 1.0 for row in rows)

    def test_table5_rows_and_twcs_wins_on_movie(self):
        rows = table5_static_comparison(
            num_trials=3, seed=0, movie_scale=0.005, datasets=("MOVIE",), methods=("SRS", "TWCS")
        )
        assert len(rows) == 2
        by_method = {row["method"]: row for row in rows}
        assert by_method["TWCS"]["annotation_hours"] < by_method["SRS"]["annotation_hours"]

    def test_table6_rows(self):
        rows = table6_kgeval_comparison(num_trials=1, seed=0, datasets=("NELL",))
        assert len(rows) == 2
        by_method = {row["method"]: row for row in rows}
        kgeval_seconds = by_method["KGEval"]["machine_time_seconds"]
        assert kgeval_seconds > by_method["TWCS"]["machine_time_seconds"]
        assert by_method["TWCS"]["moe"] <= 0.05 + 1e-9

    def test_figure5_rows_and_reduction_ratio(self):
        rows = figure5_confidence_sweep(
            num_trials=2,
            seed=0,
            movie_scale=0.005,
            datasets=("NELL",),
            confidence_levels=(0.9, 0.95),
        )
        assert len(rows) == 4
        twcs_rows = [row for row in rows if row["method"] == "TWCS"]
        assert all(-1.0 < row["cost_reduction_vs_srs"] < 1.0 for row in twcs_rows)

    def test_figure6_rows_include_theory_and_optimum(self):
        rows = figure6_optimal_m(
            num_trials=2, seed=0, movie_scale=0.004, m_values=(1, 5), datasets=("NELL",)
        )
        simulated = [row for row in rows if "annotation_hours" in row]
        assert len(simulated) == 2
        optimum = [row for row in rows if row.get("optimal")]
        assert len(optimum) == 1
        assert 1 <= optimum[0]["m"] <= 30
        assert all(row["theoretical_cost_upper_hours"] > 0 for row in simulated)

    def test_table7_rows(self):
        rows = table7_stratification(num_trials=2, seed=0, movie_scale=0.005, datasets=("NELL",))
        methods = [row["method"] for row in rows]
        assert methods == ["SRS", "TWCS", "TWCS+SIZE", "TWCS+ORACLE"]
        assert all(0.0 <= row["accuracy_estimate"] <= 1.0 for row in rows)

    def test_figure7_shapes(self):
        result = figure7_scalability(
            num_trials=1,
            seed=0,
            triple_counts=(5_000, 10_000),
            accuracies=(0.5, 0.9),
            accuracy_sweep_triples=5_000,
        )
        assert len(result["varying_size"]) == 2
        assert len(result["varying_accuracy"]) == 2
        by_accuracy = {row["accuracy"]: row for row in result["varying_accuracy"]}
        # Cost peaks at 50% accuracy.
        assert by_accuracy[0.5]["annotation_hours"] > by_accuracy[0.9]["annotation_hours"]


class TestEvolvingExperimentShapes:
    def test_figure8_rows(self):
        result = figure8_single_update(
            num_trials=1,
            seed=0,
            movie_scale=0.004,
            update_size_fractions=(0.2,),
            update_accuracies=(0.5,),
            methods=("Baseline", "SS"),
        )
        assert len(result["varying_size"]) == 2
        assert len(result["varying_accuracy"]) == 2
        by_method = {row["method"]: row for row in result["varying_size"]}
        assert by_method["SS"]["update_cost_hours"] < by_method["Baseline"]["update_cost_hours"]

    def test_figure9_structure(self):
        result = figure9_update_sequence(
            num_trials=2, seed=0, movie_scale=0.003, num_batches=3, methods=("RS", "SS")
        )
        assert set(result["mean"]) == {"RS", "SS"}
        mean_rs = result["mean"]["RS"]
        assert len(mean_rs["batch_index"]) == 4
        assert len(mean_rs["estimated_accuracy_mean"]) == 4
        over = result["overestimation_run"]["SS"]
        assert over.final_error >= 0.0
        assert over.mean_error >= 0.0
