"""The ``repro serve`` daemon: golden replay, caching, backpressure, drain.

The load-bearing test is the golden replay: a session driven through the
loopback daemon — attach, submit batches over the authenticated wire, read
the trajectory back — must reproduce ``tests/golden/evolving_*.json``
**byte-for-byte**, including after a drain/restart cycle in the middle of
the stream.  The daemon is transport, not math: it may never shift a
trajectory.

Everything here runs in-process (threads + loopback sockets, no worker
subprocesses), so the module is part of the tier-1 leg.
"""

from __future__ import annotations

import pytest

from repro.generators.datasets import LabelledKG, make_nell_like
from repro.generators.workload import UpdateWorkloadGenerator
from repro.obs import metrics as obs_metrics
from repro.sampling.rpc import RPCAuthError
from repro.serve.client import ServeClient, ServeRequestError
from repro.serve.server import EvalServer

_SEED = 2026
_SECRET = b"serve-test-secret"


@pytest.fixture(scope="module")
def base():
    data = make_nell_like(seed=0)
    return LabelledKG(data.graph.to_columnar(), data.oracle)


def _workload(base):
    return list(UpdateWorkloadGenerator(base, seed=_SEED).generate_sequence(2, 120, 0.8))


def _spec(kind: str) -> dict:
    return {
        "dataset": "nell",
        "dataset_seed": 0,
        "seed": _SEED,
        "evaluator": kind,
        "moe": 0.06,
    }


def _golden_payload(entries) -> list[dict]:
    """Rebuild the exact ``_evolving_trajectory`` golden shape from served rounds."""
    payload = [
        {
            "batch_id": entry["batch_id"],
            "accuracy": float(entry["report"].estimate.value),
            "margin_of_error": float(entry["report"].margin_of_error),
            "num_units": int(entry["report"].num_units),
            "triples_annotated": int(entry["report"].num_triples_annotated),
            "entities_identified": int(entry["report"].num_entities_identified),
            "cumulative_cost_seconds": float(entry["cumulative_cost_seconds"]),
        }
        for entry in entries
    ]
    payload.append({"true_accuracy": float(entries[-1]["record"].true_accuracy)})
    return payload


@pytest.fixture()
def server():
    server = EvalServer(port=0, secret=_SECRET, queue_limit=8)
    server.start()
    yield server
    server.shutdown(drain=True)


def _client(server) -> ServeClient:
    return ServeClient(server.address, secret=_SECRET, connect_retries=1)


# --------------------------------------------------------------------------- #
# The contract: served trajectories == offline `repro monitor` goldens
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("kind", ["rs", "ss"])
@pytest.mark.timeout(300)
def test_served_trajectory_replays_golden(server, base, golden, kind):
    with _client(server) as client:
        client.attach(_spec(kind), session=kind)
        for batch, oracle in _workload(base):
            client.submit_batch(kind, batch, oracle)
        entries = client.trajectory(kind)["entries"]
    golden.check(f"evolving_{kind}", _golden_payload(entries))


@pytest.mark.timeout(300)
def test_resume_after_drain_replays_golden(base, golden, tmp_path):
    """Drain mid-stream, restart on the same state dir, finish: still golden."""
    state_dir = tmp_path / "state"
    workload = _workload(base)

    first = EvalServer(port=0, secret=_SECRET, state_dir=state_dir, queue_limit=8)
    first.start()
    with _client(first) as client:
        client.attach(_spec("ss"), session="resumed")
        client.submit_batch("resumed", *workload[0])
    first.shutdown(drain=True)
    assert (state_dir / "resumed.ckpt").is_file()

    second = EvalServer(port=0, secret=_SECRET, state_dir=state_dir, queue_limit=8)
    second.start()
    try:
        with _client(second) as client:
            # Re-attaching the resumed session with the same spec is
            # idempotent — no new evaluator, no extra base round.
            reply = client.attach(_spec("ss"), session="resumed")
            assert reply["resumed"] is True
            assert reply["num_records"] == 2
            client.submit_batch("resumed", *workload[1])
            entries = client.trajectory("resumed")["entries"]
    finally:
        second.shutdown(drain=True)
    golden.check("evolving_ss", _golden_payload(entries))


@pytest.mark.timeout(300)
def test_reattach_with_different_spec_is_refused(server):
    with _client(server) as client:
        client.attach(_spec("ss"), session="pinned")
        with pytest.raises(ServeRequestError) as excinfo:
            client.attach(_spec("rs"), session="pinned")
        assert excinfo.value.code == "spec_mismatch"


# --------------------------------------------------------------------------- #
# estimate is an O(1) cached read
# --------------------------------------------------------------------------- #
@pytest.mark.timeout(300)
def test_estimate_is_cached_read(server, base):
    with _client(server) as client:
        client.attach(_spec("ss"), session="cached")
        batch, oracle = _workload(base)[0]
        client.submit_batch("cached", batch, oracle)
        before = obs_metrics.counter("serve_estimate_cache_hits_total").value
        replies = [client.estimate("cached") for _ in range(10)]
        after = obs_metrics.counter("serve_estimate_cache_hits_total").value
    # Every read served from the cache, none enqueued work, all identical.
    assert after - before == 10
    assert all(reply["pending"] == 0 for reply in replies)
    assert all(reply["num_records"] == 2 for reply in replies)
    first = replies[0]["latest"]["record"]
    for reply in replies[1:]:
        assert reply["latest"]["record"] == first


# --------------------------------------------------------------------------- #
# Backpressure, polling, detach discipline
# --------------------------------------------------------------------------- #
@pytest.mark.timeout(300)
def test_full_admission_queue_rejects_submit(base):
    server = EvalServer(port=0, secret=_SECRET, queue_limit=1)
    # Pausing before start() parks the eval worker before it can dequeue
    # anything, so the single queue slot deterministically stays occupied.
    server.pause()
    server.start()
    try:
        with _client(server) as client:
            client.attach(_spec("ss"), session="bp", wait=False)
            batch, oracle = _workload(base)[0]
            with pytest.raises(ServeRequestError) as excinfo:
                client.submit_batch("bp", batch, oracle, wait=False)
            assert excinfo.value.code == "backpressure"
            server.resume()
            # The queued base round still completes after the pressure clears.
            reply = client.poll("bp", min_records=1, timeout=120.0)
            assert reply["satisfied"] is True
            assert obs_metrics.counter("serve_backpressure_total").value >= 1
    finally:
        server.shutdown(drain=True)


@pytest.mark.timeout(300)
def test_poll_waits_for_threshold(server, base):
    with _client(server) as client:
        client.attach(_spec("ss"), session="poller")
        batch, oracle = _workload(base)[0]
        client.submit_batch("poller", batch, oracle, wait=False)
        reply = client.poll("poller", min_records=2, timeout=120.0)
        assert reply["satisfied"] is True
        assert reply["num_records"] >= 2
        # An unreachable threshold times out without failing the session.
        reply = client.poll("poller", min_records=99, timeout=0.2)
        assert reply["satisfied"] is False
        assert reply["failed"] is None


@pytest.mark.timeout(300)
def test_detach_drops_session(server):
    with _client(server) as client:
        client.attach(_spec("ss"), session="gone")
        assert client.detach("gone")["session"] == "gone"
        with pytest.raises(ServeRequestError) as excinfo:
            client.estimate("gone")
        assert excinfo.value.code == "bad_request"
        assert not any(
            entry["session"] == "gone" for entry in client.sessions()["entries"]
        )


# --------------------------------------------------------------------------- #
# Authentication and admission control
# --------------------------------------------------------------------------- #
@pytest.mark.timeout(60)
def test_wrong_secret_is_rejected(server):
    with pytest.raises(RPCAuthError):
        ServeClient(server.address, secret=b"not-the-secret", connect_retries=1)


@pytest.mark.timeout(300)
def test_draining_server_refuses_new_work(server):
    with _client(server) as client:
        client.attach(_spec("ss"), session="late")
        server._stopping.set()  # what SIGTERM sets, before the drain proper
        with pytest.raises(ServeRequestError) as excinfo:
            client.attach(_spec("ss"), session="too-late")
        assert excinfo.value.code == "draining"
