"""Storage subsystem tests: backend equivalence, snapshot round-trips,
streaming ingest, and the position-based sampling surface.

The property-based tests assert the load-bearing invariant of the storage
refactor: *any* sequence of triples produces the same graph — same triples in
the same order, same clusters, same sampler draws under a fixed seed — no
matter which backend holds it or whether it went through a save/load cycle.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kg.graph import KnowledgeGraph
from repro.kg.io import read_triples_tsv, write_triples_tsv
from repro.kg.triple import Triple
from repro.sampling.base import PositionUnit
from repro.sampling.rcs import RandomClusterDesign
from repro.sampling.srs import SimpleRandomDesign
from repro.sampling.tsrcs import TwoStageRandomClusterDesign
from repro.sampling.twcs import TwoStageWeightedClusterDesign
from repro.sampling.wcs import WeightedClusterDesign
from repro.storage import ColumnarStore, InMemoryStore, SnapshotStore, SqliteStore
from repro.storage.ingest import ingest_nt, ingest_rows, ingest_tsv

# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #
_triples = st.builds(
    Triple,
    st.integers(0, 8).map(lambda i: f"s{i}"),
    st.sampled_from(["p0", "p1", "p2"]),
    st.integers(0, 12).map(lambda o: f"o{o}"),
    st.booleans(),
)
_triple_lists = st.lists(_triples, max_size=60)


def _assert_same_graph(left: KnowledgeGraph, right: KnowledgeGraph) -> None:
    assert tuple(left) == tuple(right)
    assert left.triples == right.triples
    assert tuple(left.entity_ids) == tuple(right.entity_ids)
    assert np.array_equal(left.cluster_size_array(), right.cluster_size_array())
    for entity_id in left.entity_ids:
        assert left.cluster(entity_id).triples == right.cluster(entity_id).triples
        assert left.cluster_size(entity_id) == right.cluster_size(entity_id)
        assert np.array_equal(
            np.asarray(left.cluster_positions(entity_id)),
            np.asarray(right.cluster_positions(entity_id)),
        )


# --------------------------------------------------------------------------- #
# Backend equivalence
# --------------------------------------------------------------------------- #
class TestBackendEquivalence:
    @given(_triple_lists)
    @settings(max_examples=60, deadline=None)
    def test_columnar_add_path_matches_memory(self, triples):
        memory = KnowledgeGraph(triples, backend="memory")
        columnar = KnowledgeGraph(triples, backend="columnar")
        assert memory.num_triples == columnar.num_triples
        assert memory.num_entities == columnar.num_entities
        _assert_same_graph(memory, columnar)
        for triple in triples:
            assert (triple in memory) == (triple in columnar)
        assert not columnar.backend.contains(Triple("never", "seen", "this"))

    @given(_triple_lists)
    @settings(max_examples=40, deadline=None)
    def test_bulk_ingest_dedupe_matches_add_path(self, triples):
        rows = [(t.subject, t.predicate, t.obj, t.is_entity_object) for t in triples]
        bulk = ingest_rows(rows, name="bulk")
        memory = KnowledgeGraph(triples, backend="memory")
        _assert_same_graph(memory, bulk)

    @given(_triple_lists, _triple_lists)
    @settings(max_examples=30, deadline=None)
    def test_interleaved_add_and_read_on_columnar(self, first, second):
        memory = KnowledgeGraph(backend="memory")
        columnar = KnowledgeGraph(backend="columnar")
        memory.add_all(first)
        columnar.add_all(first)
        # Force a freeze (consolidation) between the two add batches.
        _ = columnar.triples
        memory.add_all(second)
        columnar.add_all(second)
        _assert_same_graph(memory, columnar)

    @given(_triple_lists)
    @settings(max_examples=25, deadline=None)
    def test_sqlite_add_path_matches_memory(self, triples):
        memory = KnowledgeGraph(triples, backend="memory")
        sqlite = KnowledgeGraph(triples, backend="sqlite")
        assert memory.num_triples == sqlite.num_triples
        assert memory.num_entities == sqlite.num_entities
        _assert_same_graph(memory, sqlite)
        for triple in triples:
            assert (triple in memory) == (triple in sqlite)
        assert not sqlite.backend.contains(Triple("never", "seen", "this"))
        assert memory.backend.stats() == sqlite.backend.stats()

    @given(_triple_lists)
    @settings(max_examples=20, deadline=None)
    def test_sqlite_csr_matches_columnar(self, triples):
        columnar = KnowledgeGraph(triples, backend="columnar")
        sqlite = KnowledgeGraph(triples, backend="sqlite")
        col_csr = columnar.backend.csr_arrays()
        sq_csr = sqlite.backend.csr_arrays()
        assert col_csr is not None and sq_csr is not None
        assert np.array_equal(np.asarray(col_csr[0]), np.asarray(sq_csr[0]))
        assert np.array_equal(np.asarray(col_csr[1]), np.asarray(sq_csr[1]))
        for columns_left, columns_right in zip(
            columnar.backend.id_columns(), sqlite.backend.id_columns()
        ):
            assert np.array_equal(np.asarray(columns_left), np.asarray(columns_right))

    def test_make_backend_rejects_unknown_name(self):
        with pytest.raises(ValueError):
            KnowledgeGraph(backend="papyrus")

    def test_copy_preserves_backend_kind(self, toy_graph):
        graph = toy_graph
        assert isinstance(graph.copy().backend, InMemoryStore)
        assert isinstance(graph.to_columnar().copy().backend, ColumnarStore)
        assert isinstance(graph.to_sqlite().copy().backend, SqliteStore)


# --------------------------------------------------------------------------- #
# Snapshot round-trips
# --------------------------------------------------------------------------- #
class TestSnapshotRoundTrip:
    @given(_triple_lists)
    @settings(max_examples=25, deadline=None)
    def test_npz_and_directory_roundtrip(self, triples):
        import tempfile
        from pathlib import Path

        memory = KnowledgeGraph(triples, name="prop", backend="memory")
        columnar = memory.to_columnar()
        with tempfile.TemporaryDirectory() as tmp:
            for target, mmap in ((Path(tmp) / "kg.npz", False), (Path(tmp) / "kgdir", True)):
                columnar.save_snapshot(target)
                reloaded = KnowledgeGraph.from_snapshot(target, mmap=mmap)
                assert reloaded.name == "prop"
                _assert_same_graph(memory, reloaded)

    def test_flags_survive_roundtrip(self, tmp_path):
        graph = KnowledgeGraph(
            [Triple("a", "p", "b", is_entity_object=True), Triple("a", "q", "lit")]
        )
        graph.save_snapshot(tmp_path / "kg.npz")
        reloaded = KnowledgeGraph.from_snapshot(tmp_path / "kg.npz")
        assert [t.is_entity_object for t in reloaded] == [True, False]

    def test_mmap_requires_directory_layout(self, tmp_path, toy_graph):
        graph = toy_graph
        graph.save_snapshot(tmp_path / "kg.npz")
        with pytest.raises(ValueError):
            SnapshotStore(tmp_path / "kg.npz").load(mmap=True)

    def test_missing_snapshot_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            SnapshotStore(tmp_path / "nope.npz").load()

    def test_sampler_draws_bit_for_bit_after_roundtrip(self, nell, tmp_path):
        """Save -> load -> the same seed yields identical draws and estimates."""
        nell.graph.to_columnar().save_snapshot(tmp_path / "nell")
        reloaded = KnowledgeGraph.from_snapshot(tmp_path / "nell", mmap=True)
        designs = {
            "srs": lambda g: SimpleRandomDesign(g, seed=5),
            "rcs": lambda g: RandomClusterDesign(g, seed=5),
            "wcs": lambda g: WeightedClusterDesign(g, seed=5),
            "twcs": lambda g: TwoStageWeightedClusterDesign(g, second_stage_size=3, seed=5),
            "tsrcs": lambda g: TwoStageRandomClusterDesign(g, second_stage_size=3, seed=5),
        }
        for name, factory in designs.items():
            baseline, roundtrip = factory(nell.graph), factory(reloaded)
            units_a, units_b = baseline.draw(40), roundtrip.draw(40)
            assert [u.triples for u in units_a] == [u.triples for u in units_b], name
            assert [u.entity_id for u in units_a] == [u.entity_id for u in units_b], name
            labels = {t: nell.oracle.label(t) for u in units_a for t in u.triples}
            baseline.update_all(units_a, labels)
            roundtrip.update_all(units_b, labels)
            assert baseline.estimate() == roundtrip.estimate(), name


# --------------------------------------------------------------------------- #
# Position surface
# --------------------------------------------------------------------------- #
class TestPositionSurface:
    @pytest.mark.parametrize("backend", ["memory", "columnar"])
    def test_object_units_carry_consistent_positions(self, nell, backend):
        graph = nell.graph if backend == "memory" else nell.graph.to_columnar()
        design = TwoStageWeightedClusterDesign(graph, second_stage_size=3, seed=2)
        for unit in design.draw(30):
            assert unit.positions is not None
            assert graph.triples_at(unit.positions) == list(unit.triples)

    @pytest.mark.parametrize(
        "factory",
        [
            lambda g: SimpleRandomDesign(g, seed=9),
            lambda g: RandomClusterDesign(g, seed=9),
            lambda g: WeightedClusterDesign(g, seed=9),
            lambda g: TwoStageWeightedClusterDesign(g, second_stage_size=4, seed=9),
            lambda g: TwoStageRandomClusterDesign(g, second_stage_size=4, seed=9),
        ],
        ids=["srs", "rcs", "wcs", "twcs", "tsrcs"],
    )
    def test_position_updates_match_object_updates(self, nell, factory):
        """Feeding the same drawn units through either update surface must
        produce the same estimate (up to float associativity)."""
        graph = nell.graph.to_columnar()
        label_array = nell.oracle.as_position_array(graph)
        object_design, position_design = factory(graph), factory(graph)
        units = object_design.draw(60)
        labels = {t: nell.oracle.label(t) for u in units for t in u.triples}
        object_design.update_all(units, labels)
        # Rebuild position units from the object draws so both designs see
        # the exact same sample.
        position_units = [
            PositionUnit(
                positions=np.asarray(u.positions),
                entity_row=-1 if u.entity_id is None else graph.entity_row(u.entity_id),
                cluster_size=u.cluster_size,
            )
            for u in units
        ]
        position_design.update_all_positions(position_units, label_array)
        a, b = object_design.estimate(), position_design.estimate()
        assert a.value == pytest.approx(b.value, abs=1e-12)
        assert a.std_error == pytest.approx(b.std_error, abs=1e-9)
        assert (a.num_units, a.num_triples) == (b.num_units, b.num_triples)

    @pytest.mark.parametrize("backend", ["memory", "columnar"])
    def test_draw_positions_estimates_are_sane(self, nell, backend):
        graph = nell.graph if backend == "memory" else nell.graph.to_columnar()
        label_array = nell.oracle.as_position_array(graph)
        estimates = []
        for seed in range(30):
            design = TwoStageWeightedClusterDesign(graph, second_stage_size=4, seed=seed)
            design.update_all_positions(design.draw_positions(120), label_array)
            estimates.append(design.estimate().value)
        assert np.mean(estimates) == pytest.approx(nell.true_accuracy, abs=0.02)

    def test_floyd_batch_sampler_is_uniform_without_replacement(self):
        from repro.kg.graph import _floyd_sample_batch

        rng = np.random.default_rng(0)
        sizes = np.full(20_000, 6)
        picks = _floyd_sample_batch(sizes, 2, rng)
        assert picks.shape == (20_000, 2)
        assert (picks >= 0).all() and (picks < 6).all()
        assert (picks[:, 0] != picks[:, 1]).all()
        # Every unordered pair of a 6-element cluster should be ~equally likely.
        pair_counts = np.zeros((6, 6))
        lo, hi = picks.min(axis=1), picks.max(axis=1)
        np.add.at(pair_counts, (lo, hi), 1)
        frequencies = pair_counts[np.triu_indices(6, k=1)] / picks.shape[0]
        assert frequencies.min() > (1 / 15) * 0.8
        assert frequencies.max() < (1 / 15) * 1.2

    def test_labels_for_positions_array_and_mapping_agree(self, nell):
        graph = nell.graph.to_columnar()
        label_array = nell.oracle.as_position_array(graph)
        positions = np.asarray([0, 5, 17, 3])
        from_array = graph.labels_for_positions(positions, label_array)
        from_mapping = graph.labels_for_positions(positions, nell.oracle.mapping)
        assert np.array_equal(from_array, from_mapping)


# --------------------------------------------------------------------------- #
# Streaming ingest
# --------------------------------------------------------------------------- #
class TestStreamingIngest:
    def test_tsv_ingest_matches_object_loader(self, tmp_path, toy_graph):
        graph = toy_graph
        path = tmp_path / "toy.tsv"
        write_triples_tsv(graph, path)
        via_objects = read_triples_tsv(path)
        via_stream = read_triples_tsv(path, backend="columnar")
        assert isinstance(via_stream.backend, ColumnarStore)
        _assert_same_graph(via_objects, via_stream)

    def test_tsv_ingest_deduplicates(self, tmp_path):
        path = tmp_path / "dups.tsv"
        path.write_text("a\tp\tx\nb\tp\ty\na\tp\tx\n", encoding="utf-8")
        graph = ingest_tsv(path)
        assert graph.num_triples == 2
        assert tuple(graph) == (Triple("a", "p", "x"), Triple("b", "p", "y"))

    def test_nt_ingest_parses_iris_and_literals(self, tmp_path):
        path = tmp_path / "kg.nt"
        path.write_text(
            "<http://x/e1> <http://x/bornIn> <http://x/e2> .\n"
            '<http://x/e1> <http://x/name> "Ada" .\n'
            "# comment\n\n",
            encoding="utf-8",
        )
        graph = ingest_nt(path)
        triples = tuple(graph)
        assert triples == (
            Triple("http://x/e1", "http://x/bornIn", "http://x/e2"),
            Triple("http://x/e1", "http://x/name", "Ada"),
        )
        assert triples[0].is_entity_object and not triples[1].is_entity_object

    def test_malformed_lines_raise(self, tmp_path):
        bad_tsv = tmp_path / "bad.tsv"
        bad_tsv.write_text("only_one_column\n", encoding="utf-8")
        with pytest.raises(ValueError):
            ingest_tsv(bad_tsv)
        bad_nt = tmp_path / "bad.nt"
        bad_nt.write_text("<s> <p> .\n", encoding="utf-8")
        with pytest.raises(ValueError):
            ingest_nt(bad_nt)

    def test_extra_tsv_columns_ignored_on_both_paths(self, tmp_path):
        """The docstring promises extra columns are ignored; a 4-column line
        must load (not raise) on both the object and streaming TSV paths."""
        path = tmp_path / "wide.tsv"
        path.write_text("a\tp\tx\textra-column\nb\tq\ty\n", encoding="utf-8")
        via_objects = read_triples_tsv(path)
        via_stream = read_triples_tsv(path, backend="columnar")
        expected = (Triple("a", "p", "x"), Triple("b", "q", "y"))
        assert tuple(via_objects) == expected
        assert tuple(via_stream) == expected
        _assert_same_graph(via_objects, via_stream)

    def test_short_tsv_line_message_says_at_least_three(self, tmp_path):
        path = tmp_path / "short.tsv"
        path.write_text("a\tp\n", encoding="utf-8")
        for backend in ("memory", "columnar"):
            with pytest.raises(ValueError, match=r"expected >= 3 columns"):
                read_triples_tsv(path, backend=backend)

    def test_nt_escapes_decode_to_bare_lexical_form(self, tmp_path):
        """NT-vs-object load parity for escaped, language-tagged, and
        datatyped literals: both paths must intern the same vocab strings."""
        path = tmp_path / "lit.nt"
        path.write_text(
            '<http://x/e1> <http://x/says> "a\\"b\\\\c" .\n'
            '<http://x/e1> <http://x/motto> "line1\\nline2\\ttabbed\\rret" .\n'
            '<http://x/e2> <http://x/name> "Ada"@en .\n'
            '<http://x/e2> <http://x/age> "36"^^<http://www.w3.org/2001/XMLSchema#int> .\n'
            '<http://x/e3> <http://x/greek> "\\u03b1\\U0001F600" .\n',
            encoding="utf-8",
        )
        via_stream = ingest_nt(path)
        expected = [
            Triple("http://x/e1", "http://x/says", 'a"b\\c'),
            Triple("http://x/e1", "http://x/motto", "line1\nline2\ttabbed\rret"),
            Triple("http://x/e2", "http://x/name", "Ada"),
            Triple("http://x/e2", "http://x/age", "36"),
            Triple("http://x/e3", "http://x/greek", "α\U0001f600"),
        ]
        assert list(via_stream) == expected
        via_objects = KnowledgeGraph(expected, backend="memory")
        _assert_same_graph(via_objects, via_stream)

    @pytest.mark.parametrize(
        "literal",
        ['"a\\" .', '"bad\\u12G4" .', '"short\\u12" .', '"what\\q" .', '"open .'],
        ids=["escaped-close-quote", "bad-hex", "short-hex", "unknown-escape", "unterminated"],
    )
    def test_malformed_nt_escapes_raise_with_line_number(self, tmp_path, literal):
        path = tmp_path / "bad-escape.nt"
        path.write_text(f"<s> <p> <o> .\n<s2> <p> {literal}\n", encoding="utf-8")
        with pytest.raises(ValueError, match=r"line 2"):
            ingest_nt(path)

    def test_malformed_literal_suffix_raises(self, tmp_path):
        path = tmp_path / "bad-suffix.nt"
        path.write_text('<s> <p> "x"junk .\n', encoding="utf-8")
        with pytest.raises(ValueError, match=r"line 1.*suffix"):
            ingest_nt(path)


# --------------------------------------------------------------------------- #
# Loader parity: object / TSV / NT / SQLite ingest
# --------------------------------------------------------------------------- #
def _column_digest(store) -> str:
    import hashlib

    digest = hashlib.sha256()
    subjects, predicates, objects, flags = store.id_columns()
    for column, dtype in (
        (subjects, np.int32),
        (predicates, np.int32),
        (objects, np.int32),
        (flags, np.uint8),
    ):
        digest.update(np.ascontiguousarray(np.asarray(column), dtype=dtype).tobytes())
        digest.update(b"|")
    return digest.hexdigest()


class TestLoaderParity:
    """Any loader, same bytes: Triple objects, TSV, NT, and SQLite ingest
    must produce identical id columns and identical planner stats."""

    # Flags stay False: TSV cannot carry the entity-object flag, so the
    # four-way comparison uses literal objects everywhere.
    _flat_triples = st.lists(
        st.builds(
            Triple,
            st.integers(0, 8).map(lambda i: f"s{i}"),
            st.sampled_from(["p0", "p1", "p2"]),
            st.integers(0, 12).map(lambda o: f"o{o}"),
        ),
        max_size=50,
    )

    @given(_flat_triples)
    @settings(max_examples=20, deadline=None)
    def test_four_loaders_agree(self, triples):
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as tmp:
            tsv_path = Path(tmp) / "kg.tsv"
            nt_path = Path(tmp) / "kg.nt"
            tsv_path.write_text(
                "".join(f"{t.subject}\t{t.predicate}\t{t.obj}\n" for t in triples),
                encoding="utf-8",
            )
            nt_path.write_text(
                "".join(f"<{t.subject}> <{t.predicate}> \"{t.obj}\" .\n" for t in triples),
                encoding="utf-8",
            )
            via_objects = KnowledgeGraph(triples, backend="columnar")
            via_objects.backend.finalize()
            via_tsv = ingest_tsv(tsv_path)
            via_nt = ingest_nt(nt_path)
            sqlite_store = SqliteStore()
            sqlite_store.ingest_file(tsv_path, "tsv", batch_size=7)
            reference = _column_digest(via_objects.backend)
            assert _column_digest(via_tsv.backend) == reference
            assert _column_digest(via_nt.backend) == reference
            assert _column_digest(sqlite_store) == reference
            reference_stats = via_objects.backend.stats()
            assert via_tsv.backend.stats() == reference_stats
            assert via_nt.backend.stats() == reference_stats
            assert sqlite_store.stats() == reference_stats


# --------------------------------------------------------------------------- #
# Cached triples view (graph-level regression)
# --------------------------------------------------------------------------- #
class TestCachedTriplesView:
    def test_view_is_cached_until_mutation(self, toy_graph):
        graph = toy_graph
        first = graph.triples
        assert graph.triples is first  # no O(M) copy per access
        graph.add(Triple("new", "p", "o"))
        second = graph.triples
        assert second is not first
        assert second[-1] == Triple("new", "p", "o")
        assert graph.entity_ids[-1] == "new"


# --------------------------------------------------------------------------- #
# Snapshot format v2: label / annotation arrays, v1 compatibility
# --------------------------------------------------------------------------- #
class TestSnapshotFormatV2:
    @pytest.mark.parametrize("layout", ["kg.npz", "kgdir"])
    def test_label_and_annotated_arrays_roundtrip(self, nell, tmp_path, layout):
        graph = nell.graph.to_columnar()
        labels = nell.oracle.as_position_array(graph)
        annotated = np.zeros(graph.num_triples, dtype=bool)
        annotated[:10] = True
        target = tmp_path / layout
        graph.save_snapshot(target, labels=labels, annotated=annotated)
        store = SnapshotStore(target)
        np.testing.assert_array_equal(np.asarray(store.load_labels()), labels)
        np.testing.assert_array_equal(np.asarray(store.load_annotated()), annotated)
        # The graph itself is untouched by the extra arrays.
        reloaded = store.load_graph()
        assert reloaded.num_triples == graph.num_triples

    def test_labels_are_optional(self, toy_graph, tmp_path):
        toy_graph.to_columnar().save_snapshot(tmp_path / "kg.npz")
        store = SnapshotStore(tmp_path / "kg.npz")
        assert store.load_labels() is None
        assert store.load_annotated() is None

    def test_misaligned_labels_rejected(self, toy_graph, tmp_path):
        with pytest.raises(ValueError):
            toy_graph.to_columnar().save_snapshot(
                tmp_path / "kg.npz", labels=np.zeros(3, dtype=bool)
            )

    @pytest.mark.parametrize("layout", ["kg.npz", "kgdir"])
    def test_v1_archives_still_load(self, toy_graph, tmp_path, monkeypatch, layout):
        """A v1 snapshot (same columns, no label arrays, meta version 1)
        must load under the v2 reader."""
        from repro.storage import snapshot as snapshot_module

        monkeypatch.setattr(snapshot_module, "_FORMAT_VERSION", 1)
        target = tmp_path / layout
        toy_graph.to_columnar().save_snapshot(target)
        monkeypatch.undo()
        store = SnapshotStore(target)
        reloaded = store.load_graph(mmap=not store.is_archive)
        assert reloaded.num_triples == toy_graph.num_triples
        assert store.load_labels() is None

    def test_newer_format_rejected(self, toy_graph, tmp_path, monkeypatch):
        from repro.storage import snapshot as snapshot_module

        monkeypatch.setattr(snapshot_module, "_FORMAT_VERSION", 99)
        toy_graph.to_columnar().save_snapshot(tmp_path / "kg.npz")
        monkeypatch.undo()
        with pytest.raises(ValueError):
            SnapshotStore(tmp_path / "kg.npz").load()
