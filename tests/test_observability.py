"""Observability layer: unit coverage and the zero-perturbation contract.

Two halves:

* **Unit coverage** of `repro.obs` — the metrics registry (labeled series,
  snapshot/export/merge), the structured JSON-lines logger (levels, context,
  reset), the span tracer (nesting, wire-context hand-off), and the
  ``metrics summarize`` table renderer.
* **The sacred invariant** — re-running the pinned golden trajectories with
  the *entire* observability stack live (debug-level JSON logs, tracing
  enabled, metrics recording) must reproduce every golden bit-for-bit.
  Instruments never touch numpy RNG streams; these tests are the proof.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from test_golden_trajectories import _engine_trajectory, _strata_rows

from repro.core.config import EvaluationConfig
from repro.evolving.reservoir_eval import ReservoirIncrementalEvaluator
from repro.evolving.stratified_eval import StratifiedIncrementalEvaluator
from repro.generators.datasets import LabelledKG, make_nell_like
from repro.generators.workload import UpdateWorkloadGenerator
from repro.obs import logging as obs_logging
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry, merge_snapshots
from repro.obs.summarize import load_snapshot, render_tables, summarize_files
from repro.sampling.parallel import PARALLEL_DESIGNS

_SEED = 2026


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Every test starts and ends with observability fully off and empty."""
    obs_metrics.reset()
    obs_trace.disable()
    obs_logging.reset()
    yield
    obs_metrics.reset()
    obs_trace.disable()
    obs_logging.reset()


@pytest.fixture(scope="module")
def labelled():
    data = make_nell_like(seed=0)
    graph = data.graph.to_columnar()
    return LabelledKG(graph, data.oracle), data.oracle.as_position_array(graph)


# --------------------------------------------------------------------------- #
# Metrics registry
# --------------------------------------------------------------------------- #
def test_counter_series_identity_and_monotonicity():
    registry = MetricsRegistry()
    first = registry.counter("frames_total", node="a")
    second = registry.counter("frames_total", node="a")
    other = registry.counter("frames_total", node="b")
    assert first is second
    assert first is not other
    first.inc()
    first.inc(2.5)
    assert first.value == 3.5
    assert other.value == 0.0
    with pytest.raises(ValueError):
        first.inc(-1)


def test_gauge_moves_both_ways():
    registry = MetricsRegistry()
    gauge = registry.gauge("window")
    gauge.set(4)
    gauge.inc()
    gauge.dec(2)
    assert gauge.value == 3.0


def test_histogram_buckets_and_fake_clock_timer():
    ticks = iter([10.0, 10.25])
    registry = MetricsRegistry(clock=lambda: next(ticks))
    histogram = registry.histogram("latency_seconds", buckets=(0.1, 1.0))
    histogram.observe(0.05)
    histogram.observe(0.5)
    histogram.observe(5.0)
    with histogram.time():  # fake clock: exactly 0.25s, lands in the 1.0 bucket
        pass
    snap = histogram._snapshot()
    assert snap["count"] == 4
    assert snap["bucket_counts"] == [1, 2, 1]
    assert snap["min"] == 0.05
    assert snap["max"] == 5.0
    assert snap["sum"] == pytest.approx(0.05 + 0.5 + 5.0 + 0.25)


def test_kind_mismatch_is_a_typed_error():
    registry = MetricsRegistry()
    registry.counter("mixed_up")
    with pytest.raises(ValueError, match="already registered as counter"):
        registry.gauge("mixed_up")


def test_snapshot_export_load_roundtrip(tmp_path):
    registry = MetricsRegistry()
    registry.counter("events_total", node="n1").inc(7)
    registry.histogram("work_seconds").observe(0.02)
    path = tmp_path / "metrics.json"
    exported = registry.export(path, meta={"node_id": "n1", "run_id": "r"})
    assert exported["meta"] == {"node_id": "n1", "run_id": "r"}
    loaded = load_snapshot(path)
    assert loaded["meta"]["run_id"] == "r"
    by_name = {entry["name"]: entry for entry in loaded["series"]}
    assert by_name["events_total"]["value"] == 7.0
    # load_snapshot back-fills the exporter's node_id onto node-less series.
    assert by_name["work_seconds"]["labels"]["node"] == "n1"
    assert by_name["events_total"]["labels"]["node"] == "n1"  # explicit label wins


def test_load_snapshot_rejects_non_snapshots(tmp_path):
    path = tmp_path / "nope.json"
    path.write_text(json.dumps({"series": "not-a-list"}))
    with pytest.raises(ValueError, match="not a metrics snapshot"):
        load_snapshot(path)


def test_merge_snapshots_is_associative_across_nodes():
    def node_snapshot(value, gauge, observation):
        registry = MetricsRegistry()
        registry.counter("frames_total", node="shared").inc(value)
        registry.gauge("window").set(gauge)
        registry.histogram("latency_seconds").observe(observation)
        return registry.snapshot()

    merged = merge_snapshots([node_snapshot(3, 1, 0.1), node_snapshot(4, 9, 0.9)])
    by_name = {entry["name"]: entry for entry in merged["series"]}
    assert by_name["frames_total"]["value"] == 7.0  # counters sum
    assert by_name["window"]["value"] == 9.0  # gauges: last wins
    latency = by_name["latency_seconds"]
    assert latency["count"] == 2
    assert latency["min"] == 0.1 and latency["max"] == 0.9  # extrema widen
    assert sum(latency["bucket_counts"]) == 2
    assert latency["bounds"] == list(DEFAULT_BUCKETS)


# --------------------------------------------------------------------------- #
# Structured logging
# --------------------------------------------------------------------------- #
def _read_records(path):
    return [json.loads(line) for line in path.read_text().splitlines() if line.strip()]


def test_logging_is_off_by_default(tmp_path):
    log = obs_logging.get_logger("test")
    assert not obs_logging.is_enabled("error")
    log.error("dropped_on_the_floor")  # must be a cheap no-op, not an error


def test_configure_levels_context_and_reset(tmp_path):
    path = tmp_path / "run.jsonl"
    obs_logging.configure(path, level="info", run_id="r1", node_id=None)
    log = obs_logging.get_logger("rpc.master")
    assert log.enabled_for("warning")
    assert not log.enabled_for("debug")
    log.debug("too_quiet", x=1)  # below threshold: not written
    log.info("node_drop", address="10.0.0.1:9", count=np.int64(2))
    obs_logging.reset()
    log.info("after_reset")  # sink closed: not written
    records = _read_records(path)
    assert [record["event"] for record in records] == ["node_drop"]
    record = records[0]
    assert record["component"] == "rpc.master"
    assert record["run_id"] == "r1"
    assert "node_id" not in record  # None context values are dropped
    assert record["count"] == 2  # numpy scalars serialize as plain JSON numbers


def test_configure_validates_its_arguments(tmp_path):
    with pytest.raises(ValueError, match="unknown log level"):
        obs_logging.configure(tmp_path / "x.jsonl", level="loud")
    with pytest.raises(ValueError, match="exactly one of"):
        obs_logging.configure()


# --------------------------------------------------------------------------- #
# Span tracer
# --------------------------------------------------------------------------- #
def test_disabled_tracer_yields_null_spans():
    with obs_trace.span("sampling.round", round=1) as outer:
        assert outer.context is None  # safe to attach to a ShardTask as trace=None
    assert obs_trace.current() is None
    assert obs_trace.trace_id() is None


def test_child_context_works_while_disabled():
    # Workers never enable tracing themselves but must echo usable contexts.
    parent = obs_trace.TraceContext(trace_id="abcd" * 4, span_id="ef01")
    child = obs_trace.child_context(parent)
    assert child.trace_id == parent.trace_id
    assert child.span_id != parent.span_id


def test_spans_nest_and_link_parents(tmp_path):
    path = tmp_path / "trace.jsonl"
    obs_logging.configure(path, level="debug")
    root_trace = obs_trace.enable()
    with obs_trace.span("evaluate") as outer:
        assert outer.context.trace_id == root_trace
        with obs_trace.span("sampling.round", round=0) as inner:
            assert inner.context.trace_id == root_trace
            assert inner.parent_id == outer.context.span_id
            assert obs_trace.current() is inner.context
    obs_trace.disable()
    records = {record["name"]: record for record in _read_records(path)}
    assert records["sampling.round"]["parent_id"] == records["evaluate"]["span_id"]
    assert records["sampling.round"]["round"] == 0
    assert records["evaluate"]["parent_id"] is None
    assert all(record["ok"] for record in records.values())


def test_explicit_parent_spans_work_without_enable(tmp_path):
    # The worker-side path: a task arrives carrying a TraceContext and the
    # worker opens a child span under it even though tracing is off locally.
    path = tmp_path / "worker.jsonl"
    obs_logging.configure(path, level="debug")
    parent = obs_trace.TraceContext(trace_id="feed" * 4, span_id="0a0b")
    with obs_trace.span("worker.task", parent=parent, shard=3) as task_span:
        assert task_span.context.trace_id == parent.trace_id
        assert task_span.parent_id == parent.span_id
    (record,) = _read_records(path)
    assert record["trace_id"] == parent.trace_id
    assert record["parent_id"] == parent.span_id
    assert record["shard"] == 3


# --------------------------------------------------------------------------- #
# Summarize tables
# --------------------------------------------------------------------------- #
def test_render_tables_sections(tmp_path):
    registry = MetricsRegistry()
    registry.histogram("sampling_shard_draw_seconds", shard="0").observe(0.01)
    registry.histogram("sampling_shard_draw_seconds", shard="1").observe(0.03)
    registry.counter("rpc_frames_sent_total", node="127.0.0.1:9001").inc(12)
    registry.counter("rpc_node_drops_total", node="127.0.0.1:9001").inc()
    registry.counter("sampling_rounds_total").inc(4)
    text = render_tables(registry.snapshot())
    assert "Per-shard draw time" in text
    assert "Per-node RPC traffic" in text
    assert "Other series" in text
    assert "127.0.0.1:9001" in text
    assert "sampling_rounds_total  4" in text


def test_render_tables_empty_snapshot():
    assert render_tables({"series": []}) == "(no series recorded)"


def test_summarize_merges_worker_files_by_node_id(tmp_path):
    # Master labels its counters by node address; the worker's unlabeled
    # counters pick up node= from its exported node_id and land in the
    # same table row.
    master = MetricsRegistry()
    master.counter("rpc_frames_sent_total", node="127.0.0.1:7001").inc(5)
    master_path = tmp_path / "master.json"
    master.export(master_path, meta={})
    worker = MetricsRegistry()
    worker.counter("rpc_frames_received_total").inc(5)
    worker_path = tmp_path / "worker.json"
    worker.export(worker_path, meta={"node_id": "127.0.0.1:7001"})
    text = summarize_files([master_path, worker_path])
    lines = [line for line in text.splitlines() if line.startswith("127.0.0.1:7001")]
    assert len(lines) == 1
    columns = lines[0].split()
    assert columns[1] == "5"  # frames_sent from the master file
    assert columns[2] == "5"  # frames_recv from the worker file


# --------------------------------------------------------------------------- #
# The sacred invariant: full observability moves no trajectory
# --------------------------------------------------------------------------- #
@pytest.fixture
def full_observability(tmp_path):
    """Everything on at maximum verbosity: debug logs, tracing, metrics."""
    log_path = tmp_path / "obs-parity.jsonl"
    obs_logging.configure(log_path, level="debug", run_id="golden-obs-parity")
    obs_trace.enable()
    yield log_path
    obs_trace.disable()
    obs_logging.reset()
    # The instrumentation must actually have fired — a parity test against
    # a silently disabled stack would prove nothing.
    records = _read_records(log_path)
    assert any(record["event"] == "span" for record in records)
    assert any(record["event"] == "shard_task" for record in records)
    names = {entry["name"] for entry in obs_metrics.snapshot()["series"]}
    assert "sampling_shard_draw_seconds" in names
    assert "sampling_rounds_total" in names


@pytest.mark.parametrize("design", PARALLEL_DESIGNS)
def test_goldens_replay_bitwise_with_obs_active(labelled, golden, full_observability, design):
    data, labels = labelled
    golden.check(f"engine_{design}", _engine_trajectory(data.graph, labels, design))


def test_stratified_golden_replays_bitwise_with_obs_active(labelled, golden, full_observability):
    data, labels = labelled
    golden.check(
        "engine_twcs_strat_neyman",
        _engine_trajectory(
            data.graph,
            labels,
            "twcs",
            strata=_strata_rows(data.graph),
            allocation="neyman",
        ),
    )


@pytest.mark.parametrize(
    "kind, cls",
    [("rs", ReservoirIncrementalEvaluator), ("ss", StratifiedIncrementalEvaluator)],
)
def test_evolving_goldens_replay_bitwise_with_obs_active(golden, tmp_path, kind, cls):
    obs_logging.configure(tmp_path / "evolving.jsonl", level="debug", run_id="evolving-obs")
    obs_trace.enable()
    data = make_nell_like(seed=0)
    base = LabelledKG(data.graph.to_columnar(), data.oracle)
    evaluator = cls(
        base, config=EvaluationConfig(moe_target=0.06), seed=_SEED, surface="position"
    )
    evaluator.evaluate_base()
    workload = UpdateWorkloadGenerator(base, seed=_SEED)
    for batch, batch_oracle in workload.generate_sequence(2, 120, 0.8):
        evaluator.apply_update(batch, batch_oracle)
    trajectory = [
        {
            "batch_id": entry.batch_id,
            "accuracy": float(entry.accuracy),
            "margin_of_error": float(entry.report.margin_of_error),
            "num_units": int(entry.report.num_units),
            "triples_annotated": int(entry.report.num_triples_annotated),
            "entities_identified": int(entry.report.num_entities_identified),
            "cumulative_cost_seconds": float(entry.cumulative_cost_seconds),
        }
        for entry in evaluator.history
    ]
    trajectory.append({"true_accuracy": float(evaluator.current_true_accuracy())})
    golden.check(f"evolving_{kind}", trajectory)
    # The evolving layer's own instruments fired during the pinned run.
    names = {entry["name"] for entry in obs_metrics.snapshot()["series"]}
    assert "annotation_cost_seconds_total" in names
    assert "annotation_triples_total" in names
