"""Tests for the sampling extensions: TSRCS ablation, pilot studies, Neyman allocation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cost.annotator import SimulatedAnnotator
from repro.cost.model import CostModel
from repro.sampling.pilot import PilotResult, recommend_design, run_pilot
from repro.sampling.stratification import stratify_by_size
from repro.sampling.stratified import StratifiedTWCSDesign
from repro.sampling.tsrcs import TwoStageRandomClusterDesign
from repro.sampling.twcs import TwoStageWeightedClusterDesign


def annotate_and_update(design, units, oracle):
    for unit in units:
        labels = {triple: oracle.label(triple) for triple in unit.triples}
        design.update(unit, labels)


class TestTwoStageRandomClusterDesign:
    def test_parameter_validation(self, toy_graph):
        from repro.kg.graph import KnowledgeGraph

        with pytest.raises(ValueError):
            TwoStageRandomClusterDesign(toy_graph, second_stage_size=0)
        with pytest.raises(ValueError):
            TwoStageRandomClusterDesign(KnowledgeGraph())
        with pytest.raises(ValueError):
            TwoStageRandomClusterDesign(toy_graph).draw(-1)

    def test_second_stage_cap(self, toy_kg):
        graph, _ = toy_kg
        design = TwoStageRandomClusterDesign(graph, second_stage_size=2, seed=0)
        for unit in design.draw(30):
            assert unit.num_triples <= 2
            assert all(t.subject == unit.entity_id for t in unit.triples)

    def test_first_stage_is_uniform(self, toy_kg):
        graph, _ = toy_kg
        design = TwoStageRandomClusterDesign(graph, second_stage_size=1, seed=1)
        draws = [unit.entity_id for unit in design.draw(4000)]
        for entity_id in graph.entity_ids:
            frequency = draws.count(entity_id) / len(draws)
            assert frequency == pytest.approx(1 / graph.num_entities, abs=0.03)

    def test_unbiased_over_many_trials(self, nell):
        estimates = []
        for seed in range(300):
            design = TwoStageRandomClusterDesign(nell.graph, second_stage_size=3, seed=seed)
            annotate_and_update(design, design.draw(40), nell.oracle)
            estimates.append(design.estimate().value)
        assert np.mean(estimates) == pytest.approx(nell.true_accuracy, abs=0.03)

    def test_higher_variance_than_twcs(self, nell):
        """The reason the paper omits TSRCS: its estimator is noisier than TWCS
        at the same number of cluster draws."""
        tsrcs_estimates, twcs_estimates = [], []
        for seed in range(150):
            tsrcs = TwoStageRandomClusterDesign(nell.graph, second_stage_size=3, seed=seed)
            annotate_and_update(tsrcs, tsrcs.draw(30), nell.oracle)
            tsrcs_estimates.append(tsrcs.estimate().value)
            twcs = TwoStageWeightedClusterDesign(nell.graph, second_stage_size=3, seed=seed)
            annotate_and_update(twcs, twcs.draw(30), nell.oracle)
            twcs_estimates.append(twcs.estimate().value)
        assert np.std(tsrcs_estimates) > np.std(twcs_estimates)

    def test_reset(self, toy_kg):
        graph, oracle = toy_kg
        design = TwoStageRandomClusterDesign(graph, second_stage_size=2, seed=0)
        annotate_and_update(design, design.draw(5), oracle)
        design.reset()
        assert design.estimate().num_units == 0


class TestPilot:
    def test_run_pilot_shapes(self, nell):
        annotator = SimulatedAnnotator(nell.oracle, seed=0)
        pilot = run_pilot(nell.graph, annotator, num_clusters=25, second_stage_size=3, seed=0)
        assert isinstance(pilot, PilotResult)
        assert pilot.num_clusters == 25
        assert len(pilot.cluster_accuracies) == 25
        assert all(0.0 <= a <= 1.0 for a in pilot.cluster_accuracies)
        assert pilot.num_triples_annotated <= 25 * 3
        assert pilot.cost_hours > 0
        assert abs(pilot.accuracy_estimate - nell.true_accuracy) < 0.2

    def test_pilot_budget_validation(self, nell):
        with pytest.raises(ValueError):
            run_pilot(nell.graph, SimulatedAnnotator(nell.oracle), num_clusters=1)

    def test_pilot_labels_reusable(self, nell):
        annotator = SimulatedAnnotator(nell.oracle, seed=0)
        run_pilot(nell.graph, annotator, num_clusters=20, seed=0)
        cost_after_pilot = annotator.total_cost_seconds
        # Re-annotating the pilot triples is free within the same session.
        pilot_triples = list(annotator.labelled_triples)
        annotator.annotate_triples(pilot_triples)
        assert annotator.total_cost_seconds == cost_after_pilot

    def test_recommend_design_in_small_m_range(self, nell):
        annotator = SimulatedAnnotator(nell.oracle, seed=1)
        pilot = run_pilot(nell.graph, annotator, num_clusters=40, seed=1)
        recommendation = recommend_design(pilot, CostModel(), moe_target=0.05)
        assert 1 <= recommendation.second_stage_size <= 20
        assert recommendation.expected_cost_seconds > 0

    def test_recommend_design_requires_pilot_data(self):
        pilot = PilotResult((5,), (0.8,), 0.8, 3, 0.1)
        with pytest.raises(ValueError):
            recommend_design(pilot)

    def test_between_cluster_std(self):
        pilot = PilotResult((3, 3, 3), (0.0, 0.5, 1.0), 0.5, 9, 0.2)
        assert pilot.between_cluster_std == pytest.approx(0.5)
        singleton = PilotResult((3,), (1.0,), 1.0, 3, 0.1)
        assert singleton.between_cluster_std == 0.0


class TestNeymanAllocation:
    def test_invalid_allocation_name(self, nell):
        strata = stratify_by_size(nell.graph, 2)
        with pytest.raises(ValueError):
            StratifiedTWCSDesign(nell.graph, strata, allocation="optimal")

    def test_neyman_falls_back_before_variances_known(self, nell):
        strata = stratify_by_size(nell.graph, 2)
        design = StratifiedTWCSDesign(nell.graph, strata, 3, seed=0, allocation="neyman")
        units = design.draw(10)
        assert len(units) == 10

    def test_neyman_shifts_draws_toward_noisy_stratum(self, movie_small):
        """Once variances are observed, Neyman allocation sends more draws to
        the stratum whose cluster accuracies vary more."""
        graph, oracle = movie_small.graph, movie_small.oracle
        # Two strata by size; the small-cluster stratum has noisier
        # per-cluster accuracies on this dataset.
        strata = stratify_by_size(graph, 2)
        design = StratifiedTWCSDesign(graph, strata, 5, seed=0, allocation="neyman")
        # Warm-up: get at least 2 units per stratum so variances are estimable.
        warmup = design.draw(10)
        annotate_and_update(design, warmup, oracle)
        per_stratum_std = [
            estimate.std_error * np.sqrt(estimate.num_units)
            for _, estimate in design.stratum_estimates()
        ]
        allocation = design._allocate(40)
        noisier = int(np.argmax(per_stratum_std))
        weights = [stratum.weight for stratum in design.strata]
        # The noisier stratum receives at least its proportional share.
        assert allocation[noisier] >= int(40 * weights[noisier]) - 1

    def test_neyman_estimates_remain_unbiased(self, nell):
        strata = stratify_by_size(nell.graph, 2)
        estimates = []
        for seed in range(100):
            design = StratifiedTWCSDesign(nell.graph, strata, 4, seed=seed, allocation="neyman")
            annotate_and_update(design, design.draw(10), nell.oracle)
            annotate_and_update(design, design.draw(20), nell.oracle)
            estimates.append(design.estimate().value)
        assert np.mean(estimates) == pytest.approx(nell.true_accuracy, abs=0.03)
