"""Position-surface evolving evaluation: delta store, segments, backend parity.

The core contract under test: a position-mode incremental evaluator consumes
the random stream identically on every storage backend, so a fixed seed must
produce bit-identical estimate trajectories on the seed in-memory store and
on the columnar store evolved through a :class:`DeltaStore` view — for *any*
update sequence (hypothesis-generated), including duplicate insertions.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import EvaluationConfig
from repro.cost.annotator import PositionAnnotationAccount
from repro.cost.model import CostModel
from repro.evolving.reservoir_eval import ReservoirIncrementalEvaluator
from repro.evolving.stratified_eval import StratifiedIncrementalEvaluator
from repro.generators.datasets import LabelledKG
from repro.kg.graph import KnowledgeGraph
from repro.kg.triple import Triple
from repro.kg.updates import EvolvingKnowledgeGraph, UpdateBatch
from repro.labels.oracle import LabelOracle
from repro.sampling.segment import PositionSegment, SegmentTWCSDesign
from repro.stats.running import RunningMean
from repro.storage.columnar import ColumnarStore
from repro.storage.delta import DeltaStore

# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------

cluster_spec = st.lists(
    st.tuples(st.integers(min_value=1, max_value=10), st.floats(min_value=0.0, max_value=1.0)),
    min_size=1,
    max_size=15,
)

# Each batch: a list of (subject selector, cluster size, accuracy, duplicate?).
batch_spec = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=1, max_value=4),
        st.floats(min_value=0.0, max_value=1.0),
        st.booleans(),
    ),
    min_size=1,
    max_size=5,
)


def build_base(spec: list[tuple[int, float]]) -> tuple[list[Triple], dict[Triple, bool]]:
    triples: list[Triple] = []
    labels: dict[Triple, bool] = {}
    for entity_index, (size, accuracy) in enumerate(spec):
        num_correct = int(round(size * accuracy))
        for triple_index in range(size):
            triple = Triple(f"e{entity_index}", "p", f"o{entity_index}_{triple_index}")
            triples.append(triple)
            labels[triple] = triple_index < num_correct
    return triples, labels


def build_updates(
    spec: list[tuple[int, float]],
    batch_specs: list[list[tuple[int, int, float, bool]]],
    base_triples: list[Triple],
) -> list[tuple[UpdateBatch, LabelOracle]]:
    updates = []
    counter = 0
    for batch_index, entries in enumerate(batch_specs):
        triples: list[Triple] = []
        labels: dict[Triple, bool] = {}
        for selector, size, accuracy, duplicate in entries:
            if duplicate and base_triples:
                # Re-insert an existing triple: both backends must skip it
                # identically (it keeps its original label).
                triples.append(base_triples[selector % len(base_triples)])
                continue
            subject = f"e{selector % (len(spec) + 8)}"
            num_correct = int(round(size * accuracy))
            for j in range(size):
                triple = Triple(subject, "ins", f"new_{counter}")
                counter += 1
                triples.append(triple)
                labels[triple] = j < num_correct
        updates.append(
            (UpdateBatch(f"delta-{batch_index}", tuple(triples)), LabelOracle(labels, strict=False))
        )
    return updates


def run_position_evaluator(evaluator_cls, base: LabelledKG, updates, seed: int, **kwargs):
    config = EvaluationConfig(moe_target=0.15, batch_size=5, min_units=5, max_units=40)
    evaluator = evaluator_cls(base, config=config, seed=seed, surface="position", **kwargs)
    states = [evaluator.evaluate_base()]
    for batch, batch_oracle in updates:
        states.append(evaluator.apply_update(batch, batch_oracle))
    trail = [
        (
            state.accuracy,
            state.report.margin_of_error,
            state.report.num_triples_annotated,
            state.cumulative_cost_seconds,
        )
        for state in states
    ]
    return evaluator, trail


# ---------------------------------------------------------------------------
# Cross-backend parity
# ---------------------------------------------------------------------------


class TestBackendParity:
    @given(
        spec=cluster_spec,
        batch_specs=st.lists(batch_spec, min_size=1, max_size=3),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_stratified_estimates_bit_identical(self, spec, batch_specs, seed):
        base_triples, base_labels = build_base(spec)
        updates = build_updates(spec, batch_specs, base_triples)
        oracle = LabelOracle(base_labels)

        memory_base = LabelledKG(KnowledgeGraph(base_triples, name="p"), oracle)
        columnar_graph = KnowledgeGraph(base_triples, name="p").to_columnar()
        columnar_base = LabelledKG(columnar_graph, oracle)

        mem_eval, memory_trail = run_position_evaluator(
            StratifiedIncrementalEvaluator, memory_base, updates, seed
        )
        col_eval, columnar_trail = run_position_evaluator(
            StratifiedIncrementalEvaluator, columnar_base, updates, seed
        )
        assert isinstance(col_eval.evolving.current.backend, DeltaStore)
        assert memory_trail == columnar_trail
        assert mem_eval.current_true_accuracy() == col_eval.current_true_accuracy()

    @pytest.mark.parametrize("seed", [0, 7, 21])
    def test_reservoir_estimates_bit_identical(self, seed):
        spec = [(6, 0.9), (3, 0.5), (9, 1.0), (1, 0.0), (4, 0.75)] * 4
        base_triples, base_labels = build_base(spec)
        batch_specs = [[(i, 3, 0.6, False), (i + 1, 2, 0.9, False)] for i in range(3)]
        updates = build_updates(spec, batch_specs, base_triples)
        oracle = LabelOracle(base_labels)

        memory_base = LabelledKG(KnowledgeGraph(base_triples, name="p"), oracle)
        columnar_base = LabelledKG(KnowledgeGraph(base_triples, name="p").to_columnar(), oracle)
        _, memory_trail = run_position_evaluator(
            ReservoirIncrementalEvaluator, memory_base, updates, seed
        )
        _, columnar_trail = run_position_evaluator(
            ReservoirIncrementalEvaluator, columnar_base, updates, seed
        )
        assert memory_trail == columnar_trail

    def test_position_labels_short_circuits_oracle(self):
        spec = [(5, 0.8), (4, 1.0), (6, 0.5)]
        base_triples, base_labels = build_base(spec)
        graph = KnowledgeGraph(base_triples, name="p").to_columnar()
        label_array = np.asarray([base_labels[t] for t in graph.triples], dtype=bool)
        # A stub oracle suffices when the label array is supplied directly.
        base = LabelledKG(graph, LabelOracle({}, strict=False))
        updates = build_updates(spec, [[(0, 2, 1.0, False)]], base_triples)
        evaluator, trail = run_position_evaluator(
            StratifiedIncrementalEvaluator, base, updates, seed=3, position_labels=label_array
        )
        assert evaluator.current_true_accuracy() == pytest.approx(
            (label_array.sum() + 2) / (label_array.shape[0] + 2)
        )
        assert all(0.0 <= accuracy <= 1.0 for accuracy, *_ in trail)


# ---------------------------------------------------------------------------
# DeltaStore contract
# ---------------------------------------------------------------------------


def reference_store(triples: list[Triple]) -> KnowledgeGraph:
    return KnowledgeGraph(triples, name="ref")


class TestDeltaStore:
    def make_pair(self, base_triples: list[Triple]):
        base = ColumnarStore.from_graph(base_triples).finalize()
        return DeltaStore(base), base

    def test_zero_copy_view_of_base(self):
        base_triples, _ = build_base([(3, 1.0), (2, 0.5)])
        delta, base = self.make_pair(base_triples)
        assert delta.num_triples == base.num_triples
        assert delta.num_entities == base.num_entities
        assert list(delta.iter_triples()) == base_triples
        assert delta.num_tail_triples == 0

    def test_duplicate_inserts_rejected(self):
        base_triples, _ = build_base([(3, 1.0), (2, 0.5)])
        delta, _ = self.make_pair(base_triples)
        assert delta.add_batch(base_triples) == [False] * len(base_triples)
        fresh = Triple("e0", "ins", "x0")
        assert delta.add(fresh) is True
        assert delta.add(fresh) is False
        # Cross-batch duplicate: the same triple arriving in a later batch.
        assert delta.add_batch([fresh, Triple("e9", "ins", "x1")]) == [False, True]
        # Within-batch duplicate keeps the first occurrence only.
        twin = Triple("e9", "ins", "x2")
        assert delta.add_batch([twin, twin]) == [True, False]

    def test_matches_reference_backend_after_updates(self):
        base_triples, _ = build_base([(4, 1.0), (1, 0.0), (6, 0.5)])
        delta, _ = self.make_pair(base_triples)
        inserts = [
            Triple("e1", "ins", "n0"),  # enrich existing entity
            Triple("zz", "ins", "n1"),  # brand-new entity
            Triple("e0", "ins", "n2"),
            Triple("zz", "ins", "n3"),
        ]
        delta.add_batch(inserts[:2])
        delta.add_batch(inserts[2:])
        reference = reference_store(base_triples + inserts)

        assert delta.num_triples == reference.num_triples
        assert delta.num_entities == reference.num_entities
        assert tuple(delta.entity_ids()) == tuple(reference.entity_ids)
        for entity_id in reference.entity_ids:
            assert delta.entity_row(entity_id) == reference.entity_row(entity_id)
            np.testing.assert_array_equal(
                np.asarray(delta.cluster_positions(entity_id)),
                np.asarray(reference.cluster_positions(entity_id)),
            )
            assert delta.cluster_size(entity_id) == reference.cluster_size(entity_id)
        np.testing.assert_array_equal(delta.cluster_size_array(), reference.cluster_size_array())
        assert list(delta.iter_triples()) == list(reference)
        for triple in reference:
            assert delta.contains(triple)
        assert not delta.contains(Triple("nope", "nope", "nope"))

    def test_merged_csr_matches_fresh_columnar_build(self):
        base_triples, _ = build_base([(4, 1.0), (2, 0.0)])
        delta, _ = self.make_pair(base_triples)
        inserts = [Triple("e0", "ins", "a"), Triple("q", "ins", "b"), Triple("e1", "ins", "c")]
        delta.add_batch(inserts)
        rebuilt = ColumnarStore.from_graph(base_triples + inserts).finalize()
        offsets, positions = delta.csr_arrays()
        expected_offsets, expected_positions = rebuilt.csr_arrays()
        np.testing.assert_array_equal(np.asarray(offsets), np.asarray(expected_offsets))
        np.testing.assert_array_equal(np.asarray(positions), np.asarray(expected_positions))

    def test_triple_positions_stable_across_appends(self):
        base_triples, _ = build_base([(2, 1.0)])
        delta, _ = self.make_pair(base_triples)
        delta.add(Triple("e0", "ins", "t0"))
        assert delta.triple_at(2) == Triple("e0", "ins", "t0")
        assert delta.triple_at(0) == base_triples[0]
        with pytest.raises(IndexError):
            delta.triple_at(3)

    def test_evolving_graph_uses_delta_store_on_columnar_base(self):
        base_triples, _ = build_base([(3, 1.0)])
        columnar = KnowledgeGraph(base_triples, name="b").to_columnar()
        evolving = EvolvingKnowledgeGraph(columnar)
        assert isinstance(evolving.current.backend, DeltaStore)
        flags = evolving.apply(UpdateBatch("d", (Triple("e0", "ins", "x"), base_triples[0])))
        assert flags == [True, False]
        assert evolving.current.num_triples == columnar.num_triples + 1
        # The frozen base graph is untouched.
        assert columnar.num_triples == len(base_triples)


# ---------------------------------------------------------------------------
# Position segments
# ---------------------------------------------------------------------------


class TestPositionSegment:
    def test_from_batch_groups_by_subject(self):
        triples = (
            Triple("a", "p", "1"),
            Triple("b", "p", "2"),
            Triple("a", "p", "3"),
            Triple("c", "p", "4"),
        )
        segment = PositionSegment.from_batch(triples, [True, True, True, False], 100)
        assert segment.subjects == ("a", "b")
        assert segment.num_clusters == 3 - 1  # "c" was a duplicate
        np.testing.assert_array_equal(segment.cluster_positions(0), [100, 102])
        np.testing.assert_array_equal(segment.cluster_positions(1), [101])
        assert segment.num_triples == 3
        np.testing.assert_array_equal(segment.sizes(), [2, 1])

    def test_segment_design_estimates_population(self):
        triples = tuple(Triple(f"s{i // 4}", "p", f"o{i}") for i in range(40))
        segment = PositionSegment.from_batch(triples, [True] * 40, 0)
        label_array = np.zeros(40, dtype=bool)
        label_array[:30] = True  # 75 % accurate
        design = SegmentTWCSDesign(segment, second_stage_size=3, seed=0)
        design.update_all_positions(design.draw_positions(300), label_array)
        estimate = design.estimate()
        assert estimate.value == pytest.approx(0.75, abs=0.1)
        assert estimate.num_units == 300

    def test_empty_segment_rejected(self):
        segment = PositionSegment.from_batch((), [], 0)
        with pytest.raises(ValueError):
            SegmentTWCSDesign(segment)


# ---------------------------------------------------------------------------
# Running stats / account
# ---------------------------------------------------------------------------


class TestRunningMeanRemove:
    @given(
        st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=2, max_size=60),
        st.integers(min_value=0, max_value=59),
    )
    @settings(max_examples=80, deadline=None)
    def test_remove_matches_recompute(self, values, remove_index):
        remove_index %= len(values)
        running = RunningMean()
        running.add_all(values)
        running.remove(values[remove_index])
        remaining = values[:remove_index] + values[remove_index + 1 :]
        np.testing.assert_allclose(running.mean, np.mean(remaining), rtol=1e-7, atol=1e-7)
        if len(remaining) >= 2:
            np.testing.assert_allclose(
                running.sample_variance, np.var(remaining, ddof=1), rtol=1e-5, atol=1e-5
            )

    def test_remove_to_empty_and_underflow(self):
        running = RunningMean()
        running.add(3.0)
        running.remove(3.0)
        assert running.count == 0
        assert running.mean == 0.0
        with pytest.raises(ValueError):
            running.remove(1.0)


class TestPositionAnnotationAccount:
    def test_charges_follow_eq4_with_dedup(self):
        model = CostModel()
        account = PositionAnnotationAccount(model)
        assert account.charge(0, [0, 1, 2]) == 3
        expected = model.identification_cost + 3 * model.validation_cost
        assert account.total_cost_seconds == pytest.approx(expected)
        # Same cluster, one new triple: no identification cost again.
        assert account.charge(0, [2, 3]) == 1
        expected += model.validation_cost
        assert account.total_cost_seconds == pytest.approx(expected)
        # Fully re-annotated positions are free, even for a new entity key.
        assert account.charge(5, [0, 1]) == 0
        assert account.total_cost_seconds == pytest.approx(expected)
        assert account.entities_identified == 1
        assert account.total_triples_annotated == 4

    def test_mark_annotated_is_free_and_mask_roundtrips(self):
        account = PositionAnnotationAccount()
        account.mark_annotated(2, [4, 5])
        assert account.total_cost_seconds == 0.0
        assert account.charge(2, [4, 5]) == 0
        mask = account.annotated_mask(8)
        np.testing.assert_array_equal(mask, [0, 0, 0, 0, 1, 1, 0, 0])


# ---------------------------------------------------------------------------
# Reservoir running-stats consistency (the O(1) margin-check fix)
# ---------------------------------------------------------------------------


class TestReservoirRunningStats:
    def test_stats_match_recomputation_after_updates(self):
        spec = [(5, 0.9), (2, 0.5), (7, 1.0), (3, 0.0)] * 5
        base_triples, base_labels = build_base(spec)
        base = LabelledKG(KnowledgeGraph(base_triples, name="p"), LabelOracle(base_labels))
        evaluator = ReservoirIncrementalEvaluator(
            base,
            config=EvaluationConfig(moe_target=0.1, batch_size=5, min_units=5, max_units=30),
            seed=11,
        )
        evaluator.evaluate_base()
        updates = build_updates(spec, [[(0, 3, 0.5, False), (50, 2, 1.0, False)]], base_triples)
        for batch, batch_oracle in updates:
            evaluator.apply_update(batch, batch_oracle)
        accuracies = [entry.accuracy for _, _, entry in evaluator._reservoir]
        estimate = evaluator._current_estimate()
        np.testing.assert_allclose(estimate.value, np.mean(accuracies), rtol=1e-12)
        expected_std_error = (
            np.std(accuracies, ddof=1) / math.sqrt(len(accuracies))
            if len(accuracies) >= 2
            else math.inf
        )
        np.testing.assert_allclose(estimate.std_error, expected_std_error, rtol=1e-9)
        assert estimate.num_units == evaluator.reservoir_size


class TestReviewRegressions:
    def test_duplicate_only_batch_adds_no_stratum_on_either_surface(self):
        spec = [(5, 0.8), (4, 1.0), (6, 0.5)] * 3
        base_triples, base_labels = build_base(spec)
        oracle = LabelOracle(base_labels)
        duplicate_batch = UpdateBatch("dup", tuple(base_triples[:6]))
        for make_graph in (
            lambda: KnowledgeGraph(base_triples, name="p"),
            lambda: KnowledgeGraph(base_triples, name="p").to_columnar(),
        ):
            for surface in ("object", "position"):
                evaluator = StratifiedIncrementalEvaluator(
                    LabelledKG(make_graph(), oracle),
                    config=EvaluationConfig(moe_target=0.2, batch_size=5, min_units=5),
                    seed=3,
                    surface=surface,
                )
                evaluator.evaluate_base()
                state = evaluator.apply_update(duplicate_batch, LabelOracle({}, strict=False))
                assert evaluator.num_strata == 1  # no stratum for an all-duplicate batch
                assert state.report.num_triples_annotated == 0

    def test_object_stratum_weight_excludes_duplicates(self):
        spec = [(5, 0.8), (4, 1.0), (6, 0.5)] * 3
        base_triples, base_labels = build_base(spec)
        evaluator = StratifiedIncrementalEvaluator(
            LabelledKG(KnowledgeGraph(base_triples, name="p"), LabelOracle(base_labels)),
            config=EvaluationConfig(moe_target=0.2, batch_size=5, min_units=5),
            seed=3,
        )
        evaluator.evaluate_base()
        fresh = tuple(Triple("e0", "ins", f"w{i}") for i in range(4))
        mixed = UpdateBatch("mixed", tuple(base_triples[:5]) + fresh)
        labels = LabelOracle({t: True for t in fresh}, strict=False)
        evaluator.apply_update(mixed, labels)
        # The new stratum covers only the 4 actually-added triples, so the
        # combined weights sum to the evolved graph's triple count.
        assert evaluator._strata[-1].num_triples == len(fresh)
        total = sum(stratum.num_triples for stratum in evaluator._strata)
        assert total == evaluator.evolving.current.num_triples

    def test_reservoir_regrow_reuses_evicted_annotations_for_free(self):
        spec = [(6, 0.9), (3, 0.5), (9, 1.0), (4, 0.75)] * 5
        base_triples, base_labels = build_base(spec)
        base = LabelledKG(KnowledgeGraph(base_triples, name="p"), LabelOracle(base_labels))
        evaluator = ReservoirIncrementalEvaluator(
            base,
            config=EvaluationConfig(moe_target=0.2, batch_size=5, min_units=5, max_units=10),
            seed=4,
            surface="position",
        )
        evaluator.evaluate_base()
        # Evict the current minimum entry by hand and push it back as a
        # candidate, as apply_update does on replacement.
        evicted = evaluator._pop_reservoir_min()
        evaluator._push_position_candidate(
            evicted.source, evicted.key, evicted.weight, evicted.positions
        )
        cost_before = evaluator.account.total_cost_seconds
        evaluator._grow_reservoir(1)
        regrown = next(
            entry for _, _, entry in evaluator._reservoir if entry.key == evicted.key
        )
        # Identical sample, identical accuracy, zero re-annotation cost.
        assert evaluator.account.total_cost_seconds == cost_before
        np.testing.assert_array_equal(regrown.positions, evicted.positions)
        assert regrown.accuracy == evicted.accuracy
