"""Fault-injection suite for the RPC shard transport.

Every scenario wedges a fault into a real master ↔ ``repro worker``
exchange — truncated frames, delayed and duplicated responses, corrupted
task bytes, mid-task SIGKILL, wrong-secret connects — and asserts the
transport's only two permitted outcomes:

* the run **replays bit-identically** against the pinned golden twcs
  trajectory (survivors re-execute from the tasks' recorded RNG states), or
* a **typed error** (:class:`RPCError` / :class:`RPCAuthError`) surfaces.

Never a hang (hard SIGALRM ``timeout`` markers), never a corrupt merge,
never arbitrary code execution from wire bytes.
"""

from __future__ import annotations

import os
import threading
import time

import pytest
from rpc_chaos import ChaosProxy, WorkerProcess

from repro.generators.datasets import LabelledKG, make_nell_like
from repro.sampling.parallel import ParallelSamplingExecutor
from repro.sampling.rpc import RPCAuthError, RPCError, SocketRPCTransport

pytestmark = [pytest.mark.rpc, pytest.mark.chaos]


@pytest.fixture(scope="module")
def labelled():
    data = make_nell_like(seed=0)
    graph = data.graph.to_columnar()
    return LabelledKG(graph, data.oracle), data.oracle.as_position_array(graph)


def _twcs_trajectory(graph, labels, transport):
    """The exact golden-pinned twcs run (seed 2026, 2 shards, 4×40 units)."""
    with ParallelSamplingExecutor(graph, num_shards=2, transport=transport) as executor:
        run = executor.run("twcs", labels, seed=2026)
        trajectory = []
        for _ in range(4):
            run.step(40)
            estimate = run.estimate()
            cost = run.cost_summary()
            trajectory.append(
                {
                    "value": float(estimate.value),
                    "std_error": float(estimate.std_error),
                    "num_units": int(estimate.num_units),
                    "num_triples": int(estimate.num_triples),
                    "entities_identified": int(cost.entities_identified),
                    "triples_annotated": int(cost.triples_annotated),
                    "cost_seconds": float(cost.cost_seconds),
                }
            )
        stats = transport.stats()
    return trajectory, stats


@pytest.mark.timeout(180)
def test_truncated_result_frame_reassigns_and_replays_golden(labelled, tmp_path, golden):
    """A node crashing mid-reply-frame is dropped; the golden replays exactly."""
    data, labels = labelled
    healthy = WorkerProcess(tmp_path / "trunc-healthy")
    victim = WorkerProcess(tmp_path / "trunc-victim")
    proxy = ChaosProxy(victim.address, truncate_result_at=1)
    try:
        transport = SocketRPCTransport([healthy.address, proxy.address])
        trajectory, stats = _twcs_trajectory(data.graph, labels, transport)
        golden.check("engine_twcs", trajectory)
        assert stats["live_nodes"] == 1
        dead = next(node for node in stats["nodes"] if node["dead"])
        assert dead["address"] == proxy.address
    finally:
        proxy.close()
        healthy.stop()
        victim.stop()


@pytest.mark.timeout(120)
def test_truncated_frame_with_no_survivor_raises_typed_error(labelled, tmp_path):
    data, labels = labelled
    victim = WorkerProcess(tmp_path / "trunc-only")
    proxy = ChaosProxy(victim.address, truncate_result_at=1)
    try:
        transport = SocketRPCTransport([proxy.address])
        with pytest.raises(RPCError):
            _twcs_trajectory(data.graph, labels, transport)
    finally:
        proxy.close()
        victim.stop()


@pytest.mark.timeout(180)
def test_delayed_replies_stay_bit_identical(labelled, tmp_path, golden):
    """A deterministically slow node changes nothing but wall-clock time."""
    data, labels = labelled
    fast = WorkerProcess(tmp_path / "delay-fast")
    slow = WorkerProcess(tmp_path / "delay-slow")
    proxy = ChaosProxy(slow.address, delay_results=0.05)
    try:
        transport = SocketRPCTransport([fast.address, proxy.address], window=4)
        trajectory, stats = _twcs_trajectory(data.graph, labels, transport)
        golden.check("engine_twcs", trajectory)
        assert stats["live_nodes"] == 2
    finally:
        proxy.close()
        fast.stop()
        slow.stop()


@pytest.mark.timeout(180)
def test_duplicated_result_frame_fails_closed_and_replays_golden(labelled, tmp_path, golden):
    """A replayed/duplicated reply desyncs that node only; the run survives."""
    data, labels = labelled
    healthy = WorkerProcess(tmp_path / "dup-healthy")
    victim = WorkerProcess(tmp_path / "dup-victim")
    proxy = ChaosProxy(victim.address, duplicate_result_at=1)
    try:
        transport = SocketRPCTransport([healthy.address, proxy.address])
        trajectory, stats = _twcs_trajectory(data.graph, labels, transport)
        golden.check("engine_twcs", trajectory)
        # The healthy node must have survived whatever the duplicate did.
        healthy_stats = next(n for n in stats["nodes"] if n["address"] == healthy.address)
        assert not healthy_stats["dead"]
    finally:
        proxy.close()
        healthy.stop()
        victim.stop()


@pytest.mark.timeout(180)
def test_corrupted_task_frame_is_caught_by_crc_and_replayed(labelled, tmp_path, golden):
    """A flipped wire byte dies on the codec CRC, never inside the worker."""
    data, labels = labelled
    healthy = WorkerProcess(tmp_path / "crc-healthy")
    victim = WorkerProcess(tmp_path / "crc-victim")
    proxy = ChaosProxy(victim.address, corrupt_task_at=1)
    try:
        transport = SocketRPCTransport([healthy.address, proxy.address])
        trajectory, stats = _twcs_trajectory(data.graph, labels, transport)
        golden.check("engine_twcs", trajectory)
        assert stats["live_nodes"] >= 1
        # The worker itself survived the corrupt frame (connection-level drop).
        assert victim.proc.poll() is None
    finally:
        proxy.close()
        healthy.stop()
        victim.stop()


@pytest.mark.timeout(180)
def test_sigkill_mid_task_replays_golden(labelled, tmp_path, golden):
    """SIGKILL while a task is executing: survivors re-execute it identically."""
    from repro.obs import metrics as obs_metrics

    data, labels = labelled
    obs_metrics.reset()  # scope the master-side counters to this scenario
    # The survivor is throttled a little too, so the run is still in
    # flight when the timer fires and the master observes the death
    # (instead of the whole trajectory completing in milliseconds).
    survivor = WorkerProcess(tmp_path / "kill-survivor", task_delay=0.05)
    victim = WorkerProcess(tmp_path / "kill-victim", task_delay=0.25)
    timer = threading.Timer(0.3, victim.kill)
    try:
        transport = SocketRPCTransport([survivor.address, victim.address])
        timer.start()
        trajectory, stats = _twcs_trajectory(data.graph, labels, transport)
        golden.check("engine_twcs", trajectory)
        assert stats["live_nodes"] >= 1
        survivor_stats = next(n for n in stats["nodes"] if n["address"] == survivor.address)
        assert not survivor_stats["dead"]
        # The master's metrics registry recorded the drop, labeled with the
        # victim's address — and no other node was ever latched dead.
        drops = [
            (entry["labels"]["node"], entry["value"])
            for entry in obs_metrics.snapshot()["series"]
            if entry["name"] == "rpc_node_drops_total"
        ]
        assert len(drops) == 1, drops
        assert drops[0][0] == victim.address
        assert drops[0][1] >= 1.0
        # The survivor's structured JSON log shows it authenticated and
        # actually executed shard tasks for this run.
        survivor.stop()  # orderly SIGTERM also flushes its metrics snapshot
        assert survivor.structured_events("handshake_ok")
        assert survivor.structured_events("shard_task")
        assert survivor.metrics_path.exists()
        import json

        snapshot = json.loads(survivor.metrics_path.read_text())
        names = {entry["name"] for entry in snapshot["series"]}
        assert "rpc_task_service_seconds" in names
    finally:
        timer.cancel()
        survivor.stop()
        victim.stop()


@pytest.mark.timeout(120)
@pytest.mark.parametrize(
    "worker_secret, master_secret",
    [("alpha", "beta"), ("alpha", None), (None, "beta")],
)
def test_wrong_secret_is_rejected_before_any_task_bytes(
    labelled, tmp_path, worker_secret, master_secret
):
    """Auth mismatch (either direction) is a typed error with zero work done."""
    data, labels = labelled
    worker = WorkerProcess(tmp_path / "auth-victim", secret=worker_secret)
    try:
        transport = SocketRPCTransport([worker.address], secret=master_secret)
        with pytest.raises(RPCAuthError):
            _twcs_trajectory(data.graph, labels, transport)
        stats = transport.stats()
        assert stats["nodes"][0]["auth_failed"]
        assert stats["nodes"][0]["tasks_executed"] == 0
        assert stats["snapshots_shipped"] == 0
        # Nothing reached the worker's content-addressed cache: no task
        # bytes, no snapshot bytes, before authentication.
        digests = [d for d in os.listdir(worker.cache_dir) if not d.startswith(".")]
        assert digests == []
        assert worker.proc.poll() is None
        # The rejection left a structured audit record in the worker's log
        # (written just after the auth_error reply; poll briefly for it).
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline and not worker.structured_events("auth_failed"):
            time.sleep(0.05)
        assert worker.structured_events("auth_failed")
    finally:
        worker.stop()


@pytest.mark.timeout(120)
def test_join_listener_is_not_a_signing_oracle_for_worker_auth(tmp_path):
    """Relay-attack regression: a tag minted by the master's ``--accept-joins``
    listener (role ``join-master``) must never authenticate anyone to a
    listening worker (role ``listen-master``) — the handshake tags are
    domain-separated per direction and bind both nonces."""
    import socket as socket_module

    from repro.sampling.rpc import (
        PROTOCOL_VERSION,
        parse_node_address,
        recv_message,
        send_message,
    )

    worker = WorkerProcess(tmp_path / "oracle-worker", secret="alpha")
    transport = SocketRPCTransport(
        [], secret="alpha", join_address="127.0.0.1:0", connect_timeout=2.0
    )
    try:
        # Step 1: open a connection to the worker and capture its challenge
        # nonce without answering yet.
        host, port = worker.address.rsplit(":", 1)
        victim = socket_module.create_connection((host, int(port)), timeout=10)
        victim.settimeout(10)
        challenge = recv_message(victim)
        assert challenge["op"] == "challenge"
        # Step 2: replay that nonce into the master's join listener and
        # harvest the authenticated welcome it sends back *before* it could
        # verify us.
        oracle = socket_module.create_connection(
            parse_node_address(transport.join_address), timeout=10
        )
        oracle.settimeout(10)
        send_message(
            oracle, {"op": "join", "version": PROTOCOL_VERSION, "nonce": challenge["nonce"]}
        )
        transport._accept_joins()  # master processes the queued join, sends welcome
        welcome = recv_message(oracle)
        assert welcome is not None and welcome["op"] == "welcome"
        # Step 3: relay the harvested tag to the worker as if it were a
        # master hello.  Domain separation must make the worker reject it.
        send_message(
            victim,
            {
                "op": "hello",
                "version": PROTOCOL_VERSION,
                "auth": welcome["auth"],
                "nonce": welcome["nonce"],
            },
        )
        reply = recv_message(victim)
        assert reply is None or reply.get("op") == "auth_error"
        assert worker.proc.poll() is None
    finally:
        transport.close()
        worker.stop()


@pytest.mark.timeout(180)
def test_matching_secret_serves_the_golden_trajectory(labelled, tmp_path, golden):
    """The positive auth path: same secret on both sides, bit-identical run."""
    data, labels = labelled
    workers = [
        WorkerProcess(tmp_path / f"auth-ok-{index}", secret="s3cr3t") for index in range(2)
    ]
    try:
        transport = SocketRPCTransport(
            [worker.address for worker in workers], secret="s3cr3t"
        )
        trajectory, stats = _twcs_trajectory(data.graph, labels, transport)
        golden.check("engine_twcs", trajectory)
        assert stats["live_nodes"] == 2
    finally:
        for worker in workers:
            worker.stop()
