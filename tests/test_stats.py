"""Unit tests for confidence intervals, running moments and allocation helpers."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.stats.allocation import (
    cumulative_sqrt_frequency_boundaries,
    neyman_allocation,
    proportional_allocation,
)
from repro.stats.ci import (
    margin_of_error,
    normal_critical_value,
    normal_interval,
    required_sample_size,
    wilson_interval,
)
from repro.stats.running import RunningMean


class TestConfidenceIntervals:
    def test_critical_values(self):
        assert normal_critical_value(0.95) == pytest.approx(1.959964, abs=1e-4)
        assert normal_critical_value(0.90) == pytest.approx(1.644854, abs=1e-4)
        assert normal_critical_value(0.99) == pytest.approx(2.575829, abs=1e-4)

    def test_critical_value_rejects_bad_level(self):
        with pytest.raises(ValueError):
            normal_critical_value(1.0)
        with pytest.raises(ValueError):
            normal_critical_value(0.0)

    def test_margin_of_error(self):
        assert margin_of_error(0.1, 0.95) == pytest.approx(0.196, abs=1e-3)
        with pytest.raises(ValueError):
            margin_of_error(-0.1, 0.95)

    def test_normal_interval_symmetry(self):
        interval = normal_interval(0.8, 0.05, 0.95)
        assert interval.estimate == 0.8
        assert interval.margin_of_error == pytest.approx(1.96 * 0.05, abs=1e-3)
        assert interval.lower == pytest.approx(0.8 - interval.margin_of_error)
        assert interval.upper == pytest.approx(0.8 + interval.margin_of_error)
        assert interval.width == pytest.approx(2 * interval.margin_of_error)

    def test_interval_contains_and_clip(self):
        interval = normal_interval(0.98, 0.03, 0.95)
        assert interval.contains(0.98)
        clipped = interval.clipped()
        assert clipped.upper <= 1.0
        assert clipped.lower >= 0.0

    def test_wilson_interval_basic(self):
        interval = wilson_interval(90, 100, 0.95)
        assert 0.82 < interval.lower < 0.9 < interval.upper < 0.96
        assert interval.estimate == pytest.approx(0.9)

    def test_wilson_interval_extreme_counts(self):
        perfect = wilson_interval(30, 30, 0.95)
        assert perfect.upper == pytest.approx(1.0)
        assert perfect.lower > 0.8
        zero = wilson_interval(0, 30, 0.95)
        assert zero.lower == 0.0
        assert zero.upper < 0.2

    def test_wilson_interval_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0, 0.95)
        with pytest.raises(ValueError):
            wilson_interval(11, 10, 0.95)

    def test_required_sample_size_matches_closed_form(self):
        # n = p(1-p) z^2 / eps^2 for p=0.9, eps=0.05, 95%: ≈ 139.
        n = required_sample_size(0.9 * 0.1, 0.05, 0.95)
        assert n == 139

    def test_required_sample_size_validation(self):
        with pytest.raises(ValueError):
            required_sample_size(0.25, 0.0, 0.95)
        with pytest.raises(ValueError):
            required_sample_size(-0.1, 0.05, 0.95)

    def test_wilson_interval_single_trial_extremes(self):
        # The smallest legal sample: the interval must stay inside [0, 1] and
        # keep the point estimate inside itself despite round-off.
        zero = wilson_interval(0, 1, 0.95)
        assert zero.lower == 0.0
        assert zero.contains(zero.estimate)
        assert 0.0 < zero.upper < 1.0
        one = wilson_interval(1, 1, 0.95)
        assert one.upper == 1.0
        assert one.contains(one.estimate)
        assert 0.0 < one.lower < 1.0

    def test_wilson_interval_extremes_at_high_confidence(self):
        # 99.9% confidence on 0/large-n: still a proper interval, wider than
        # the 95% one, never escaping the unit range.
        narrow = wilson_interval(0, 500, 0.95)
        wide = wilson_interval(0, 500, 0.999)
        assert narrow.lower == wide.lower == 0.0
        assert 0.0 < narrow.upper < wide.upper < 0.1

    def test_required_sample_size_tiny_moe(self):
        # A vanishing MoE target must grow n by the exact 1/eps^2 law without
        # overflowing or losing the ceil (no silent float truncation).
        z = normal_critical_value(0.95)
        for moe in (1e-3, 1e-4, 1e-6):
            n = required_sample_size(0.25, moe, 0.95)
            assert n == math.ceil(0.25 * z * z / (moe * moe))
            # Closed-form consistency: n satisfies the target, n-1 does not.
            assert z * math.sqrt(0.25 / n) <= moe
            assert z * math.sqrt(0.25 / (n - 1)) > moe

    def test_required_sample_size_zero_variance(self):
        # Degenerate population: one unit is always enough.
        assert required_sample_size(0.0, 1e-9, 0.99) == 1

    def test_normal_critical_value_boundary_rejection(self):
        # The open interval (0, 1) is strict: both endpoints and anything
        # outside must raise, while values arbitrarily close to them work.
        for bad in (0.0, 1.0, -0.05, 1.5, math.nan):
            with pytest.raises(ValueError):
                normal_critical_value(bad)
        assert normal_critical_value(1e-9) > 0.0
        assert normal_critical_value(1.0 - 1e-12) > 6.0


class TestRunningMean:
    def test_empty_state(self):
        running = RunningMean()
        assert running.count == 0
        assert running.mean == 0.0
        assert running.sample_variance == 0.0
        assert math.isinf(running.std_error)

    def test_matches_numpy(self, rng):
        values = rng.normal(5.0, 2.0, size=200)
        running = RunningMean()
        running.add_all(values)
        assert running.mean == pytest.approx(float(np.mean(values)))
        assert running.sample_variance == pytest.approx(float(np.var(values, ddof=1)))
        assert running.population_variance == pytest.approx(float(np.var(values)))
        assert running.std_error == pytest.approx(
            float(np.std(values, ddof=1) / np.sqrt(values.size))
        )

    def test_single_observation(self):
        running = RunningMean()
        running.add(3.0)
        assert running.mean == 3.0
        assert math.isinf(running.std_error)

    def test_merge_equals_sequential(self, rng):
        values = rng.random(100)
        left = RunningMean()
        right = RunningMean()
        left.add_all(values[:40])
        right.add_all(values[40:])
        left.merge(right)
        combined = RunningMean()
        combined.add_all(values)
        assert left.count == combined.count
        assert left.mean == pytest.approx(combined.mean)
        assert left.sample_variance == pytest.approx(combined.sample_variance)

    def test_merge_with_empty(self):
        running = RunningMean()
        running.add_all([1.0, 2.0])
        empty = RunningMean()
        running.merge(empty)
        assert running.count == 2
        empty.merge(running)
        assert empty.count == 2
        assert empty.mean == pytest.approx(1.5)

    def test_copy_is_independent(self):
        running = RunningMean()
        running.add_all([1.0, 2.0, 3.0])
        clone = running.copy()
        clone.add(100.0)
        assert running.count == 3
        assert clone.count == 4


class TestAllocation:
    def test_proportional_allocation_sums_to_total(self):
        allocation = proportional_allocation([0.5, 0.3, 0.2], 10)
        assert sum(allocation) == 10
        assert allocation[0] >= allocation[1] >= allocation[2]

    def test_proportional_allocation_minimum_one_per_stratum(self):
        allocation = proportional_allocation([0.98, 0.01, 0.01], 10)
        assert sum(allocation) == 10
        assert all(a >= 1 for a in allocation)

    def test_proportional_allocation_zero_total(self):
        assert proportional_allocation([1.0, 1.0], 0) == [0, 0]

    def test_proportional_allocation_validation(self):
        with pytest.raises(ValueError):
            proportional_allocation([-1.0, 2.0], 5)
        with pytest.raises(ValueError):
            proportional_allocation([0.0, 0.0], 5)
        with pytest.raises(ValueError):
            proportional_allocation([1.0], -1)

    def test_neyman_allocation_prefers_high_variance_strata(self):
        allocation = neyman_allocation([0.5, 0.5], [0.0, 0.5], 10)
        assert allocation[1] > allocation[0]
        assert sum(allocation) == 10

    def test_neyman_falls_back_to_proportional_when_all_zero_std(self):
        assert neyman_allocation([0.7, 0.3], [0.0, 0.0], 10) == proportional_allocation(
            [0.7, 0.3], 10
        )

    def test_neyman_validation(self):
        with pytest.raises(ValueError):
            neyman_allocation([0.5], [0.1, 0.2], 5)
        with pytest.raises(ValueError):
            neyman_allocation([0.5, 0.5], [-0.1, 0.2], 5)

    def test_cumulative_sqrt_f_boundaries_count(self):
        sizes = [1] * 50 + [2] * 30 + [5] * 15 + [20] * 5
        boundaries = cumulative_sqrt_frequency_boundaries(sizes, 4)
        assert len(boundaries) == 3
        assert boundaries == sorted(boundaries)

    def test_cumulative_sqrt_f_single_stratum(self):
        assert cumulative_sqrt_frequency_boundaries([1, 2, 3], 1) == []

    def test_cumulative_sqrt_f_few_distinct_values(self):
        boundaries = cumulative_sqrt_frequency_boundaries([1, 1, 2, 2], 4)
        assert len(boundaries) <= 3
        assert all(b > 0 for b in boundaries)

    def test_cumulative_sqrt_f_validation(self):
        with pytest.raises(ValueError):
            cumulative_sqrt_frequency_boundaries([], 2)
        with pytest.raises(ValueError):
            cumulative_sqrt_frequency_boundaries([1, 2], 0)

    def test_boundaries_partition_strata_reasonably(self, nell):
        sizes = nell.graph.cluster_size_array()
        boundaries = cumulative_sqrt_frequency_boundaries(sizes, 2)
        assert len(boundaries) == 1
        below = int(np.sum(sizes <= boundaries[0]))
        assert 0 < below < sizes.size
