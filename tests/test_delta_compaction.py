"""DeltaStore periodic re-freeze (compaction) keeps reads and draws identical."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kg.graph import KnowledgeGraph
from repro.kg.triple import Triple
from repro.kg.updates import EvolvingKnowledgeGraph, UpdateBatch
from repro.sampling.srs import SimpleRandomDesign
from repro.sampling.twcs import TwoStageWeightedClusterDesign
from repro.storage.columnar import ColumnarStore
from repro.storage.delta import DeltaStore


def _base_store(num_entities: int = 40, seed: int = 0) -> ColumnarStore:
    rng = np.random.default_rng(seed)
    store = ColumnarStore()
    graph = KnowledgeGraph(name="base", backend=store)
    for entity in range(num_entities):
        for index in range(int(rng.integers(1, 8))):
            graph.add(Triple(f"e{entity}", f"p{index % 3}", f"o{entity}_{index}"))
    store.finalize()
    return store


def _random_batch(rng: np.random.Generator, batch_id: int, existing: list[Triple]) -> UpdateBatch:
    """A batch mixing fresh triples with duplicates of already-present ones."""
    triples: list[Triple] = []
    for index in range(int(rng.integers(3, 10))):
        entity = int(rng.integers(0, 60))
        triples.append(Triple(f"e{entity}", "p-new", f"n{batch_id}_{index}"))
    duplicates = min(len(existing), int(rng.integers(0, 4)))
    if duplicates:
        chosen = rng.choice(len(existing), size=duplicates, replace=False)
        triples.extend(existing[int(i)] for i in chosen)
    rng.shuffle(triples)
    return UpdateBatch(f"delta-{batch_id}", tuple(triples))


def _apply_stream(store: ColumnarStore, num_batches: int, seed: int = 7) -> DeltaStore:
    delta = DeltaStore(store)
    rng = np.random.default_rng(seed)
    existing = list(store.iter_triples())
    for batch_id in range(num_batches):
        batch = _random_batch(rng, batch_id, existing)
        flags = delta.add_batch(list(batch.triples))
        existing.extend(t for t, added in zip(batch.triples, flags) if added)
    return delta


def _twcs_estimate(backend, seed: int, labels: np.ndarray):
    graph = KnowledgeGraph(name="g", backend=backend)
    design = TwoStageWeightedClusterDesign(graph, second_stage_size=3, seed=seed)
    for _ in range(12):
        units = design.draw_positions(25)
        design.update_all_positions(units, labels)
    return design.estimate()


class TestCompactStructure:
    def test_compact_preserves_positions_rows_and_csr(self):
        delta = _apply_stream(_base_store(), num_batches=12)
        entity_ids = list(delta.entity_ids())
        positions_before = {e: delta.cluster_positions(e).tolist() for e in entity_ids}
        offsets_before, csr_positions_before = delta.csr_arrays()
        triples_before = list(delta.iter_triples())
        num_triples, num_entities = delta.num_triples, delta.num_entities

        delta.compact()

        assert delta.num_tail_triples == 0
        assert delta.num_triples == num_triples
        assert delta.num_entities == num_entities
        assert list(delta.entity_ids()) == entity_ids
        for entity_id in entity_ids:
            assert delta.cluster_positions(entity_id).tolist() == positions_before[entity_id]
        offsets_after, csr_positions_after = delta.csr_arrays()
        np.testing.assert_array_equal(offsets_before, offsets_after)
        np.testing.assert_array_equal(
            np.asarray(csr_positions_before), np.asarray(csr_positions_after)
        )
        assert list(delta.iter_triples()) == triples_before
        for triple in triples_before[:20]:
            assert delta.contains(triple)

    def test_append_and_dedup_after_compact(self):
        delta = _apply_stream(_base_store(), num_batches=5)
        known = next(iter(delta.iter_triples()))
        delta.compact()
        assert delta.add(known) is False  # dedup against the re-frozen base
        fresh = Triple("e0", "p-new", "post-compact")
        before = delta.num_triples
        assert delta.add(fresh) is True
        assert delta.num_triples == before + 1
        assert delta.cluster_positions("e0")[-1] == before
        # A second compaction folds the new tail in as well.
        delta.compact()
        assert delta.contains(fresh)
        assert delta.num_tail_triples == 0

    def test_maybe_compact_threshold(self):
        delta = DeltaStore(_base_store())
        assert delta.maybe_compact(threshold=0.5, min_tail=4) is False  # empty tail
        for index in range(6):
            delta.add(Triple("e0", "p", f"t{index}"))
        assert delta.maybe_compact(threshold=0.5, min_tail=100) is False  # below min_tail
        assert delta.maybe_compact(threshold=10.0, min_tail=4) is False  # below ratio
        assert delta.maybe_compact(threshold=0.01, min_tail=4) is True
        assert delta.num_tail_triples == 0
        with pytest.raises(ValueError):
            delta.maybe_compact(threshold=0.0)

    def test_invalid_compact_threshold_fails_fast(self):
        base = KnowledgeGraph(name="base", backend=_base_store())
        with pytest.raises(ValueError, match="compact_threshold"):
            EvolvingKnowledgeGraph(base, compact_threshold=0.0)
        with pytest.raises(ValueError, match="compact_threshold"):
            EvolvingKnowledgeGraph(base, compact_threshold=-1.0)


class TestCompactEstimates:
    def test_estimates_bit_identical_pre_post_compaction(self):
        """Same seed, same labels: compacted and layered stores draw identically."""
        layered = _apply_stream(_base_store(), num_batches=15)
        compacted = _apply_stream(_base_store(), num_batches=15)
        assert layered.num_triples == compacted.num_triples
        compacted.compact()
        labels = np.random.default_rng(11).random(layered.num_triples) < 0.85
        for seed in (0, 1, 2):
            assert _twcs_estimate(layered, seed, labels) == _twcs_estimate(
                compacted, seed, labels
            )
        srs_a = SimpleRandomDesign(KnowledgeGraph(name="a", backend=layered), seed=5)
        srs_b = SimpleRandomDesign(KnowledgeGraph(name="b", backend=compacted), seed=5)
        units_a = srs_a.draw_positions(50)
        units_b = srs_b.draw_positions(50)
        assert [u.positions.tolist() for u in units_a] == [
            u.positions.tolist() for u in units_b
        ]

    def test_long_duplicate_stream_with_periodic_compaction(self):
        """100+ batches with duplicates: periodic re-freeze changes nothing."""
        plain = _apply_stream(_base_store(), num_batches=110, seed=23)
        periodic_base = _base_store()
        periodic = DeltaStore(periodic_base)
        rng = np.random.default_rng(23)
        existing = list(periodic_base.iter_triples())
        for batch_id in range(110):
            batch = _random_batch(rng, batch_id, existing)
            flags = periodic.add_batch(list(batch.triples))
            existing.extend(t for t, added in zip(batch.triples, flags) if added)
            periodic.maybe_compact(threshold=0.1, min_tail=64)
        assert periodic.num_triples == plain.num_triples
        assert periodic.num_entities == plain.num_entities
        assert list(periodic.entity_ids()) == list(plain.entity_ids())
        labels = np.random.default_rng(3).random(plain.num_triples) < 0.9
        assert _twcs_estimate(plain, 9, labels) == _twcs_estimate(periodic, 9, labels)


class TestEvolvingAutoCompaction:
    def test_evolving_graph_auto_compacts(self):
        base = KnowledgeGraph(name="base", backend=_base_store())
        evolving = EvolvingKnowledgeGraph(base, compact_threshold=0.05, compact_min_tail=8)
        rng = np.random.default_rng(1)
        existing = list(base)
        for batch_id in range(30):
            batch = _random_batch(rng, batch_id, existing)
            flags = evolving.apply(batch)
            existing.extend(t for t, added in zip(batch.triples, flags) if added)
        assert evolving.compactions > 0
        backend = evolving.current.backend
        assert isinstance(backend, DeltaStore)
        # The evolved view matches an un-compacted replay triple for triple.
        reference = EvolvingKnowledgeGraph(
            KnowledgeGraph(name="ref", backend=_base_store())
        )
        rng = np.random.default_rng(1)
        existing = list(reference.base)
        for batch_id in range(30):
            batch = _random_batch(rng, batch_id, existing)
            flags = reference.apply(batch)
            existing.extend(t for t, added in zip(batch.triples, flags) if added)
        assert reference.current.num_triples == evolving.current.num_triples
        assert list(reference.current) == list(evolving.current)

    def test_evaluator_compact_threshold_keeps_trajectory_bit_identical(self):
        from repro.core.config import EvaluationConfig
        from repro.evolving.stratified_eval import StratifiedIncrementalEvaluator
        from repro.generators.datasets import LabelledKG, make_nell_like
        from repro.generators.workload import UpdateWorkloadGenerator

        config = EvaluationConfig(moe_target=0.06)
        trajectories = []
        compactions = []
        for threshold in (None, 0.01):
            data = make_nell_like(seed=0)
            base = LabelledKG(data.graph.to_columnar(), data.oracle)
            workload = UpdateWorkloadGenerator(base, seed=5)
            evaluator = StratifiedIncrementalEvaluator(
                base, config=config, seed=13, surface="position", compact_threshold=threshold
            )
            evaluator.evolving.compact_min_tail = 16
            evaluator.evaluate_base()
            for batch, batch_oracle in workload.generate_sequence(4, 150, 0.8):
                evaluator.apply_update(batch, batch_oracle)
            trajectories.append(
                [(e.batch_id, e.accuracy, e.cumulative_cost_seconds) for e in evaluator.history]
            )
            compactions.append(evaluator.evolving.compactions)
        assert compactions[0] == 0 and compactions[1] > 0
        assert trajectories[0] == trajectories[1]

    def test_state_capture_refuses_compacted_runs(self):
        from repro.evolving.state import capture_evaluator_state
        from repro.evolving.stratified_eval import StratifiedIncrementalEvaluator
        from repro.generators.datasets import LabelledKG, make_nell_like
        from repro.generators.workload import UpdateWorkloadGenerator

        data = make_nell_like(seed=0)
        base = LabelledKG(data.graph.to_columnar(), data.oracle)
        workload = UpdateWorkloadGenerator(base, seed=5)
        evaluator = StratifiedIncrementalEvaluator(base, seed=13, surface="position")
        evaluator.evaluate_base()
        for batch, batch_oracle in workload.generate_sequence(1, 100, 0.8):
            evaluator.apply_update(batch, batch_oracle)
        evaluator.evolving.current.backend.compact()
        with pytest.raises(ValueError, match="compact"):
            capture_evaluator_state(evaluator)
