"""Property-based tests (hypothesis) for the update-workload generator.

Invariants that must hold for any workload shape, not just the scenario
packs' parameters:

* :func:`batch_schedule` conserves the total update count exactly for every
  pattern, emits one non-negative size per batch, and is a pure function of
  its arguments;
* :class:`UpdateWorkloadGenerator` is deterministic under a fixed seed —
  batches, labels and deletion picks reproduce bit-for-bit;
* a single generator never deletes the same triple twice, even across
  overlapping candidate lists, and deletion batches shrink (possibly to
  empty) rather than over-draw when candidates run out;
* scheduled sequences apply exactly the requested update mass.
"""

from __future__ import annotations

from functools import lru_cache

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators.datasets import LabelledKG
from repro.generators.workload import (
    SCHEDULE_PATTERNS,
    UpdateWorkloadGenerator,
    batch_schedule,
)
from repro.kg.graph import KnowledgeGraph
from repro.kg.triple import Triple
from repro.labels.oracle import LabelOracle

patterns = st.sampled_from(SCHEDULE_PATTERNS)


@lru_cache(maxsize=1)
def small_base() -> LabelledKG:
    """A tiny immutable base KG shared by all examples (generators copy state)."""
    triples = [
        Triple(f"base_{cluster}", "p", f"o{index}")
        for cluster in range(6)
        for index in range(cluster + 1)
    ]
    graph = KnowledgeGraph(triples, name="workload-prop-base")
    return LabelledKG(graph, LabelOracle({triple: True for triple in triples}))


def batch_fingerprint(batch, oracle) -> tuple:
    # Oracle insertion order mirrors batch order, so it is part of the identity.
    return (batch.batch_id, batch.triples, tuple(oracle.as_dict().items()))


# ---------------------------------------------------------------------------
# batch_schedule
# ---------------------------------------------------------------------------


@given(
    total=st.integers(min_value=1, max_value=5000),
    num_batches=st.integers(min_value=1, max_value=50),
    pattern=patterns,
)
def test_schedule_conserves_total_updates(total, num_batches, pattern):
    sizes = batch_schedule(total, num_batches, pattern)
    assert len(sizes) == num_batches
    assert all(size >= 0 for size in sizes)
    assert sum(sizes) == total


@given(
    total=st.integers(min_value=1, max_value=1000),
    num_batches=st.integers(min_value=1, max_value=20),
    pattern=patterns,
)
def test_schedule_is_pure(total, num_batches, pattern):
    assert batch_schedule(total, num_batches, pattern) == batch_schedule(
        total, num_batches, pattern
    )


@given(total=st.integers(min_value=10, max_value=2000))
def test_bursty_spikes_dominate_quiet_batches(total):
    sizes = batch_schedule(total, 9, "bursty")
    spikes = sizes[0::3]
    quiet = [size for index, size in enumerate(sizes) if index % 3 != 0]
    assert min(spikes) >= max(quiet)


@given(total=st.integers(min_value=8, max_value=2000), num_batches=st.integers(2, 16))
def test_frontloaded_sizes_never_increase(total, num_batches):
    sizes = batch_schedule(total, num_batches, "frontloaded")
    assert all(left >= right for left, right in zip(sizes, sizes[1:]))


# ---------------------------------------------------------------------------
# Determinism under a fixed seed
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    total=st.integers(min_value=4, max_value=120),
    num_batches=st.integers(min_value=1, max_value=6),
    accuracy=st.floats(min_value=0.0, max_value=1.0),
    pattern=patterns,
)
def test_scheduled_sequence_deterministic_under_seed(seed, total, num_batches, accuracy, pattern):
    def run():
        generator = UpdateWorkloadGenerator(small_base(), seed=seed)
        return [
            batch_fingerprint(batch, oracle)
            for batch, oracle in generator.generate_scheduled_sequence(
                total, num_batches, accuracy, pattern
            )
        ]

    assert run() == run()


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    total=st.integers(min_value=4, max_value=120),
    num_batches=st.integers(min_value=1, max_value=6),
    pattern=patterns,
)
def test_scheduled_sequence_conserves_total(seed, total, num_batches, pattern):
    generator = UpdateWorkloadGenerator(small_base(), seed=seed)
    emitted = sum(
        batch.size
        for batch, _ in generator.generate_scheduled_sequence(total, num_batches, 0.8, pattern)
    )
    assert emitted == total


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_deletions_deterministic_under_seed(seed):
    candidates = list(small_base().graph)

    def run():
        generator = UpdateWorkloadGenerator(small_base(), seed=seed)
        return [generator.generate_deletion_batch(candidates, 4).triples for _ in range(4)]

    assert run() == run()


# ---------------------------------------------------------------------------
# Never delete the same triple twice
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    per_batch=st.integers(min_value=0, max_value=9),
    num_batches=st.integers(min_value=1, max_value=8),
)
def test_never_deletes_twice_across_overlapping_candidates(seed, per_batch, num_batches):
    base = small_base()
    generator = UpdateWorkloadGenerator(base, seed=seed)
    candidates = list(base.graph)
    seen: set[Triple] = set()
    for _ in range(num_batches):
        batch = generator.generate_deletion_batch(candidates, per_batch)
        chosen = set(batch.triples)
        # Distinct within the batch, and disjoint from everything already deleted.
        assert len(chosen) == batch.size
        assert not chosen & seen
        assert chosen <= set(candidates)
        seen |= chosen
    assert len(seen) <= len(candidates)


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_deletion_batches_shrink_when_pool_runs_dry(seed):
    base = small_base()
    generator = UpdateWorkloadGenerator(base, seed=seed)
    candidates = list(base.graph)
    total = len(candidates)
    first = generator.generate_deletion_batch(candidates, total - 3)
    second = generator.generate_deletion_batch(candidates, total)
    third = generator.generate_deletion_batch(candidates, 5)
    assert first.size == total - 3
    assert second.size == 3  # only the leftovers remain
    assert third.size == 0  # pool exhausted: empty batch, no error
    assert not (set(first.triples) & set(second.triples))
