"""Evaluator-state persistence (snapshot format v3): interrupt/resume parity.

The regression contract: interrupting a monitoring run after *any* batch,
persisting the evaluator state, restoring it over a reload of the base graph
and replaying the remaining batches must yield exactly the trajectory of an
uninterrupted run — estimates, margins of error and cost accounting alike.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import EvaluationConfig
from repro.evolving.reservoir_eval import ReservoirIncrementalEvaluator
from repro.evolving.state import capture_evaluator_state, restore_evaluator
from repro.evolving.stratified_eval import StratifiedIncrementalEvaluator
from repro.generators.datasets import LabelledKG, make_nell_like
from repro.generators.workload import UpdateWorkloadGenerator
from repro.labels.oracle import LabelOracle
from repro.storage.snapshot import SnapshotStore

_CONFIG = EvaluationConfig(moe_target=0.06)
_CLASSES = {"rs": ReservoirIncrementalEvaluator, "ss": StratifiedIncrementalEvaluator}


def _base_and_updates(num_batches: int = 4):
    data = make_nell_like(seed=0)
    base = LabelledKG(data.graph.to_columnar(), data.oracle)
    workload = UpdateWorkloadGenerator(base, seed=5)
    updates = list(workload.generate_sequence(num_batches, 120, 0.75))
    return base, updates


def _fresh_evaluator(kind: str, base: LabelledKG):
    return _CLASSES[kind](
        base, config=_CONFIG, seed=13, surface="position"
    )


def _trajectory(evaluator) -> list[tuple]:
    return [
        (
            evaluation.batch_id,
            evaluation.accuracy,
            evaluation.report.margin_of_error,
            evaluation.report.num_triples_annotated,
            evaluation.cumulative_cost_seconds,
        )
        for evaluation in evaluator.history
    ]


@pytest.mark.parametrize("kind", ["rs", "ss"])
def test_resume_at_every_batch_boundary(kind):
    base, updates = _base_and_updates(num_batches=4)
    reference = _fresh_evaluator(kind, base)
    reference.evaluate_base()
    for batch, batch_oracle in updates:
        reference.apply_update(batch, batch_oracle)
    expected = _trajectory(reference)

    for boundary in range(len(updates) + 1):
        data = make_nell_like(seed=0)
        base_run = LabelledKG(data.graph.to_columnar(), data.oracle)
        evaluator = _fresh_evaluator(kind, base_run)
        evaluator.evaluate_base()
        for batch, batch_oracle in updates[:boundary]:
            evaluator.apply_update(batch, batch_oracle)

        state = capture_evaluator_state(evaluator)
        data_reload = make_nell_like(seed=0)
        base_reload = LabelledKG(data_reload.graph.to_columnar(), data_reload.oracle)
        resumed = restore_evaluator(state, base_reload)
        for batch, batch_oracle in updates[boundary:]:
            resumed.apply_update(batch, batch_oracle)

        assert _trajectory(resumed) == expected, f"{kind} diverged after boundary {boundary}"
        assert resumed.current_true_accuracy() == reference.current_true_accuracy()
        assert resumed.total_cost_hours == reference.total_cost_hours


@pytest.mark.parametrize("kind", ["rs", "ss"])
def test_snapshot_store_round_trip(tmp_path, kind):
    """The v3 sidecar round-trips through SnapshotStore on both layouts."""
    base, updates = _base_and_updates(num_batches=3)
    labels = base.oracle.as_position_array(base.graph)
    store = SnapshotStore(tmp_path / "kg-snap")
    store.save(base.graph, labels=labels)

    evaluator = _fresh_evaluator(kind, base)
    evaluator.evaluate_base()
    evaluator.apply_update(*updates[0])
    assert not store.has_evaluator_state()
    sidecar = store.save_evaluator_state(evaluator)
    assert sidecar == store.evaluator_state_path
    assert store.has_evaluator_state()

    reopened = store.load_graph()
    base_reload = LabelledKG(
        reopened, LabelOracle({}, strict=False)
    )  # position surface never reads the oracle
    resumed = store.load_evaluator_state(base_reload)
    for batch, batch_oracle in updates[1:]:
        evaluator.apply_update(batch, batch_oracle)
        resumed.apply_update(batch, batch_oracle)
    assert _trajectory(resumed) == _trajectory(evaluator)


def test_resume_with_parallel_workers_matches_sharded_serial():
    """workers=0 and workers=2 continuations agree for the same shard plan."""
    base, updates = _base_and_updates(num_batches=3)
    evaluator = _fresh_evaluator("ss", base)
    evaluator.evaluate_base()
    evaluator.apply_update(*updates[0])
    state = capture_evaluator_state(evaluator)

    trajectories = []
    for workers in (0, 2):
        data = make_nell_like(seed=0)
        reload_base = LabelledKG(data.graph.to_columnar(), data.oracle)
        resumed = restore_evaluator(state, reload_base, workers=workers, num_shards=3)
        for batch, batch_oracle in updates[1:]:
            resumed.apply_update(batch, batch_oracle)
        trajectories.append(_trajectory(resumed))
        resumed.close()
    assert trajectories[0] == trajectories[1]


def test_capture_requires_position_surface_and_delta_backend():
    data = make_nell_like(seed=0)
    object_mode = StratifiedIncrementalEvaluator(data, config=_CONFIG, seed=0)
    with pytest.raises(ValueError, match="position"):
        capture_evaluator_state(object_mode)
    memory_mode = StratifiedIncrementalEvaluator(
        data, config=_CONFIG, seed=0, surface="position"
    )
    with pytest.raises(ValueError, match="columnar"):
        capture_evaluator_state(memory_mode)
