"""Shared-memory transport: parity, warm-pool reuse, and segment lifecycle.

:class:`~repro.sampling.shm.SharedMemoryTransport` must replay the serial
engine bit for bit (the universal transport contract), adopt its parked
keep-alive pool across binds, and serve successive *different* graphs from
one pool because the attachment descriptor travels per task.  Everything
here spawns worker processes, so the module carries the ``parallel`` marker
and runs in CI's dedicated parallel leg.
"""

from __future__ import annotations

import pytest

from repro.generators.datasets import LabelledKG, make_nell_like, make_yago_like
from repro.obs import metrics as obs_metrics
from repro.sampling import shm
from repro.sampling.parallel import ParallelSamplingExecutor
from repro.sampling.shm import SharedMemoryTransport

pytestmark = pytest.mark.parallel


@pytest.fixture(scope="module")
def labelled():
    data = make_nell_like(seed=0)
    graph = data.graph.to_columnar()
    return LabelledKG(graph, data.oracle), data.oracle.as_position_array(graph)


def _run_result(graph, labels, *, transport=None, workers=None, num_shards=3, seed=11, units=150):
    with ParallelSamplingExecutor(
        graph, workers=workers, num_shards=num_shards, transport=transport
    ) as executor:
        run = executor.run("twcs", labels, seed=seed)
        while run.num_units < units:
            before = run.num_units
            run.step(min(50, units - run.num_units))
            if run.num_units == before:
                break
        return run.estimate(), run.cost_summary(), run.shard_stats()


@pytest.fixture(autouse=True)
def _clean_warm_pools():
    shm.shutdown_warm_pools()
    yield
    shm.shutdown_warm_pools()


class TestParity:
    def test_matches_serial_engine_bit_for_bit(self, labelled):
        data, labels = labelled
        reference = _run_result(data.graph, labels, workers=None)
        via_shm = _run_result(data.graph, labels, transport=SharedMemoryTransport(2))
        assert via_shm[0] == reference[0]
        assert via_shm[1] == reference[1]

    def test_shard_stats_report_the_shm_kind(self, labelled):
        data, labels = labelled
        _, _, stats = _run_result(data.graph, labels, transport=SharedMemoryTransport(2))
        assert stats and all(entry["transport"] == "shm" for entry in stats)

    def test_execute_before_bind_is_an_error(self):
        transport = SharedMemoryTransport(2)
        with pytest.raises(RuntimeError, match="bind"):
            transport.execute([])


class TestWarmPools:
    def test_close_parks_and_next_bind_adopts(self, labelled):
        data, labels = labelled
        counter = obs_metrics.counter("sampling_warm_pool_reuse_total", kind="shm")
        before = counter.value
        first = _run_result(data.graph, labels, transport=SharedMemoryTransport(2))
        assert 2 in shm._WARM_SHM_POOLS  # executor close parked the pool
        second = _run_result(data.graph, labels, transport=SharedMemoryTransport(2))
        assert second[0] == first[0]
        assert counter.value == before + 1
        assert 2 in shm._WARM_SHM_POOLS  # parked again after the second run

    def test_warm_pool_serves_a_different_graph(self, labelled):
        data, labels = labelled
        other = make_yago_like(seed=0)
        other_graph = other.graph.to_columnar()
        other_labels = other.oracle.as_position_array(other_graph)
        _run_result(data.graph, labels, transport=SharedMemoryTransport(2))
        assert 2 in shm._WARM_SHM_POOLS
        reference = _run_result(other_graph, other_labels, workers=None)
        adopted = _run_result(other_graph, other_labels, transport=SharedMemoryTransport(2))
        assert adopted[0] == reference[0]
        assert adopted[1] == reference[1]

    def test_keep_alive_false_shuts_down(self, labelled):
        data, labels = labelled
        transport = SharedMemoryTransport(2, keep_alive=False)
        _run_result(data.graph, labels, transport=transport)
        assert 2 not in shm._WARM_SHM_POOLS

    def test_shutdown_warm_pools_drains_the_registry(self, labelled):
        data, labels = labelled
        _run_result(data.graph, labels, transport=SharedMemoryTransport(2))
        assert shm._WARM_SHM_POOLS
        shm.shutdown_warm_pools()
        assert not shm._WARM_SHM_POOLS


class TestSegmentLifecycle:
    def test_segments_released_on_close(self, labelled):
        data, labels = labelled
        transport = SharedMemoryTransport(2)
        with ParallelSamplingExecutor(data.graph, num_shards=2, transport=transport) as executor:
            run = executor.run("twcs", labels, seed=3)
            run.step(40)
            names = [segment.name for segment in transport._segments]
            assert len(names) == 2
        assert transport._segments == []
        assert transport._descriptor is None
        # The master unlinked the segments: fresh attaches must fail.
        from multiprocessing import shared_memory

        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_rebind_replaces_segments(self, labelled):
        data, labels = labelled
        transport = SharedMemoryTransport(2)
        try:
            first = _run_result(data.graph, labels, transport=transport)
            second = _run_result(data.graph, labels, transport=transport)
            assert second[0] == first[0]
        finally:
            transport.close()
