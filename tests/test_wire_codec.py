"""Fuzz suite for the schema'd wire codec (`repro.sampling.wire`).

Two properties carry the transport's safety story:

* **Fidelity** — ``decode(encode(x)) == x`` over randomized
  :class:`ShardTask` / :class:`ShardResult` trees, live RNG streams
  included (the strategies are shared with the transport round-trip
  suite).
* **Totality under hostility** — decoding mutated or arbitrary bytes never
  executes anything and never escapes with anything but
  :class:`WireError`: every single-byte flip of a valid frame is caught by
  the magic/version/length/CRC checks before one value is decoded.

No sockets are involved; this runs in the tier-1 leg.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from test_transport_roundtrip import (
    _arrays_equal,
    _results,
    _seeds_equal,
    _sources_equal,
    _tasks,
    _traces_equal,
)

from repro.core.result import EvaluationReport
from repro.evolving.monitor import MonitorRecord
from repro.kg.triple import Triple
from repro.obs.trace import TraceContext
from repro.sampling import wire
from repro.sampling.base import Estimate
from repro.sampling.parallel import ShardResult, ShardTask
from repro.sampling.wire import WireError


def _tasks_equal(first: ShardTask, second: ShardTask) -> bool:
    return (
        first.index == second.index
        and first.design == second.design
        and first.count == second.count
        and first.cap == second.cap
        and first.cursor == second.cursor
        and first.rng_state == second.rng_state
        and _seeds_equal(first.perm_seed, second.perm_seed)
        and _sources_equal(first.source, second.source)
        and _traces_equal(first.trace, second.trace)
    )


# --------------------------------------------------------------------------- #
# Fidelity
# --------------------------------------------------------------------------- #
@given(task=_tasks())
def test_task_frame_roundtrip(task):
    decoded = wire.decode_frame(wire.encode_frame(task))
    assert isinstance(decoded, ShardTask)
    assert _tasks_equal(decoded, task)


@given(result=_results())
def test_result_frame_roundtrip(result):
    decoded = wire.decode_frame(wire.encode_frame(result))
    assert isinstance(decoded, ShardResult)
    assert decoded.index == result.index
    assert decoded.cursor == result.cursor
    assert decoded.elapsed == result.elapsed
    assert decoded.rng_state == result.rng_state
    assert _traces_equal(decoded.trace, result.trace)
    for name in ("rows", "counts", "sizes", "positions"):
        assert _arrays_equal(getattr(decoded, name), getattr(result, name))


@given(
    message=st.fixed_dictionaries(
        {
            "op": st.sampled_from(["hello", "task", "result", "attach"]),
            "id": st.integers(min_value=0, max_value=2**40),
            "nonce": st.binary(min_size=0, max_size=32),
            "digests": st.lists(st.text(max_size=16), max_size=4),
            "big": st.integers(min_value=-(2**200), max_value=2**200),
            "nested": st.dictionaries(
                st.text(max_size=8), st.one_of(st.none(), st.booleans(), st.floats(allow_nan=False))
            ),
        }
    )
)
def test_message_dict_roundtrip(message):
    assert wire.decode_frame(wire.encode_frame(message)) == message


def test_live_rng_stream_survives_the_frame():
    rng = np.random.default_rng(7)
    rng.integers(0, 100, size=13)  # advance to a non-trivial state
    state = rng.bit_generator.state
    restored = np.random.default_rng()
    restored.bit_generator.state = wire.decode_frame(wire.encode_frame(state))
    np.testing.assert_array_equal(
        rng.integers(0, 1 << 30, size=16),
        restored.integers(0, 1 << 30, size=16),
    )


def test_seedsequence_spawn_tree_roundtrip():
    root = np.random.SeedSequence(1234)
    child = root.spawn(3)[2].spawn(2)[1]
    decoded = wire.decode_frame(wire.encode_frame(child))
    assert decoded.entropy == child.entropy
    assert decoded.spawn_key == child.spawn_key
    np.testing.assert_array_equal(decoded.generate_state(8), child.generate_state(8))


# --------------------------------------------------------------------------- #
# Totality under hostility
# --------------------------------------------------------------------------- #
@settings(max_examples=300)
@given(task=_tasks(), mutation=st.tuples(st.integers(min_value=0), st.integers(1, 255)))
def test_any_single_byte_flip_raises_wire_error(task, mutation):
    """decode(mutate(encode(x))) is always WireError — never code execution."""
    encoded = bytearray(wire.encode_frame(task))
    position, flip = mutation
    position %= len(encoded)
    encoded[position] ^= flip
    with pytest.raises(WireError):
        wire.decode_frame(bytes(encoded))


@given(result=_results(), cut=st.integers(min_value=0, max_value=10_000))
def test_truncated_frames_raise_wire_error(result, cut):
    encoded = wire.encode_frame(result)
    with pytest.raises(WireError):
        wire.decode_frame(encoded[: cut % len(encoded)])


@given(task=_tasks(), junk=st.binary(min_size=1, max_size=64))
def test_trailing_junk_raises_wire_error(task, junk):
    with pytest.raises(WireError):
        wire.decode_frame(wire.encode_frame(task) + junk)


@given(data=st.binary(max_size=256))
def test_decoding_arbitrary_payload_bytes_is_total(data):
    """`loads` of arbitrary bytes either succeeds or raises WireError — the
    decoder constructs nothing outside its closed type set and never lets
    another exception (let alone a segfault or code execution) escape."""
    try:
        wire.loads(data)
    except WireError:
        pass


@given(data=st.binary(max_size=256))
def test_decoding_arbitrary_frame_bytes_raises_wire_error(data):
    with pytest.raises(WireError):
        wire.decode_frame(data)


# --------------------------------------------------------------------------- #
# Schema enforcement at encode time
# --------------------------------------------------------------------------- #
def test_object_arrays_are_refused():
    hostile = np.asarray([object()], dtype=object)
    with pytest.raises(WireError):
        wire.dumps(hostile)


def test_arbitrary_objects_are_refused():
    class Payload:
        pass

    with pytest.raises(WireError):
        wire.dumps({"op": "task", "task": Payload()})


def test_non_string_dict_keys_are_refused():
    with pytest.raises(WireError):
        wire.dumps({1: "x"})


def test_overdeep_nesting_is_refused_both_ways():
    value = "leaf"
    for _ in range(64):
        value = [value]
    with pytest.raises(WireError):
        wire.dumps(value)


def test_huge_declared_containers_are_bounded():
    # A forged list header claiming 2**31 items must die on the size guard,
    # not allocate.
    forged = bytes([8]) + (2**31 - 1).to_bytes(4, "big") + b"\x00"
    with pytest.raises(WireError):
        wire.loads(forged)


# --------------------------------------------------------------------------- #
# Trace-context tag: back-compat and forward hostility
# --------------------------------------------------------------------------- #
@given(task=_tasks(), result=_results())
def test_trace_tag_selection_is_exact(task, result):
    """``trace=None`` keeps the legacy tags (so old peers decode the frame
    byte-identically); a carried trace switches to the traced tags."""
    from dataclasses import replace

    task_payload = wire.dumps(task)
    expected_task = wire._T_TASK if task.trace is None else wire._T_TASK_TRACED
    assert task_payload[0] == expected_task
    result_payload = wire.dumps(result)
    expected_result = wire._T_RESULT if result.trace is None else wire._T_RESULT_TRACED
    assert result_payload[0] == expected_result
    # Stripping the trace reproduces the exact legacy byte stream: the
    # traced encoding is a pure suffix extension, not a re-layout.
    stripped = wire.dumps(replace(task, trace=None))
    if task.trace is not None:
        assert stripped[0] == wire._T_TASK
        assert task_payload[1 : len(stripped)] == stripped[1:]


def test_trace_context_roundtrips_standalone():
    context = TraceContext(trace_id="cafe" * 4, span_id="beef" * 2)
    decoded = wire.loads(wire.dumps(context))
    assert isinstance(decoded, TraceContext)
    assert decoded == context


@settings(max_examples=200)
@given(
    tag=st.integers(min_value=wire._T_MONITOR_RECORD + 1, max_value=255),
    junk=st.binary(max_size=64),
)
def test_unknown_future_tags_raise_typed_error(tag, junk):
    """A frame from a *newer* peer (tag beyond this codec's table) fails as
    a typed WireError immediately — never a hang, never a crash."""
    with pytest.raises(WireError, match="unknown wire tag"):
        wire.loads(bytes([tag]) + junk)


def test_task_trace_field_must_be_a_trace_context():
    """A forged traced-task frame whose trace field is some other value dies
    on the schema check, not inside the constructor."""
    from repro.sampling.parallel import ShardSource

    task = ShardTask(
        index=0,
        design="srs",
        source=ShardSource(kind="range", lo=0, hi=4),
        count=1,
        cap=1,
        rng_state=None,
        perm_seed=None,
        cursor=0,
    )
    task_payload = bytearray(wire.dumps(task))
    assert task_payload[0] == wire._T_TASK
    task_payload[0] = wire._T_TASK_TRACED
    # The traced decoder now expects one more field; a truncated or
    # wrongly-typed tail is a WireError either way.
    with pytest.raises(WireError):
        wire.loads(bytes(task_payload))


# --------------------------------------------------------------------------- #
# Serve extension tags (19-22): fidelity and suffix compatibility
# --------------------------------------------------------------------------- #
def _sample_report() -> "EvaluationReport":
    return EvaluationReport(
        estimate=Estimate(value=0.875, std_error=0.0125, num_units=40, num_triples=310),
        confidence_level=0.95,
        moe_target=0.05,
        satisfied=True,
        iterations=7,
        num_units=40,
        num_triples_annotated=310,
        num_entities_identified=38,
        annotation_cost_seconds=1234.5,
    )


@given(
    subject=st.text(max_size=24),
    predicate=st.text(max_size=24),
    obj=st.text(max_size=24),
    is_entity=st.booleans(),
)
def test_triple_frame_roundtrip(subject, predicate, obj, is_entity):
    triple = Triple(subject, predicate, obj, is_entity_object=is_entity)
    decoded = wire.decode_frame(wire.encode_frame(triple))
    assert isinstance(decoded, Triple)
    assert decoded == triple
    assert decoded.is_entity_object == triple.is_entity_object


@given(
    value=st.floats(allow_nan=False),
    std_error=st.floats(min_value=0, allow_nan=False),
    num_units=st.integers(min_value=0, max_value=2**40),
    num_triples=st.integers(min_value=0, max_value=2**40),
)
def test_estimate_frame_roundtrip(value, std_error, num_units, num_triples):
    estimate = Estimate(
        value=value, std_error=std_error, num_units=num_units, num_triples=num_triples
    )
    decoded = wire.decode_frame(wire.encode_frame(estimate))
    assert isinstance(decoded, Estimate)
    assert decoded == estimate


def test_report_frame_roundtrip():
    report = _sample_report()
    decoded = wire.decode_frame(wire.encode_frame(report))
    assert isinstance(decoded, EvaluationReport)
    assert decoded == report
    # Derived quantities survive because the fields do, bit for bit.
    assert decoded.margin_of_error == report.margin_of_error


def test_monitor_record_frame_roundtrip():
    record = MonitorRecord(
        batch_index=3,
        batch_id="delta-2",
        estimated_accuracy=0.8854,
        margin_of_error=0.0505,
        true_accuracy=0.8973,
        incremental_cost_hours=0.26,
        cumulative_cost_hours=2.59,
    )
    decoded = wire.decode_frame(wire.encode_frame(record))
    assert isinstance(decoded, MonitorRecord)
    assert decoded == record


def test_serve_payloads_nest_inside_messages():
    """A whole serve reply (dict of records/reports/triples) round-trips."""
    message = {
        "op": "result",
        "session": "demo",
        "report": _sample_report(),
        "triples": [Triple("s", "p", "o"), Triple("s", "p", "e", is_entity_object=True)],
        "labels": [True, False],
    }
    assert wire.decode_frame(wire.encode_frame(message)) == message


def test_serve_tags_are_a_pure_suffix():
    """Tags 19-22 extend the table without renumbering: every pre-serve tag
    keeps its value, so frames that avoid serve types are byte-identical to
    what an old peer emits, and an old peer meeting a serve frame dies on
    its own `unknown wire tag` guard rather than misparsing."""
    assert (
        wire._T_TRIPLE,
        wire._T_ESTIMATE,
        wire._T_REPORT,
        wire._T_MONITOR_RECORD,
    ) == (19, 20, 21, 22)
    assert wire._T_RESULT_TRACED == 18  # the previous ceiling is untouched
    assert wire.dumps(Triple("s", "p", "o"))[0] == wire._T_TRIPLE


@given(junk=st.binary(max_size=32))
def test_truncated_serve_frames_raise_wire_error(junk):
    for tag in (wire._T_TRIPLE, wire._T_ESTIMATE, wire._T_REPORT, wire._T_MONITOR_RECORD):
        with pytest.raises(WireError):
            wire.loads(bytes([tag]) + junk)
