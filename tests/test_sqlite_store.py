"""SqliteStore: the out-of-core storage backend.

Covers the durability setup (WAL pragmas), reopen persistence, draw-stream
parity against the columnar backend, resumable checkpointed ingest —
including a subprocess SIGKILLed mid-load and resumed to a byte-identical
database — and the CLI surface (``snapshot --backend sqlite`` /
``evaluate --from-snapshot db.sqlite``).
"""

from __future__ import annotations

import os
import pickle
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main
from repro.kg.graph import KnowledgeGraph
from repro.kg.triple import Triple
from repro.storage import SqliteStore, make_backend
from repro.storage.sqlite import is_sqlite_file


def _write_tsv(path: Path, rows: int = 3000, seed: int = 3) -> Path:
    rng = np.random.default_rng(seed)
    lines = [
        f"e{rng.integers(0, rows // 10)}\tp{rng.integers(0, 5)}\to{i % (rows // 4)}"
        for i in range(rows)
    ]
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


class TestSqliteBasics:
    def test_wal_pragmas_applied(self, tmp_path):
        store = SqliteStore(tmp_path / "kg.sqlite")
        conn = store._conn
        assert conn.execute("PRAGMA journal_mode").fetchone()[0] == "wal"
        assert conn.execute("PRAGMA synchronous").fetchone()[0] == 1  # NORMAL
        assert conn.execute("PRAGMA busy_timeout").fetchone()[0] == 30000
        assert conn.execute("PRAGMA mmap_size").fetchone()[0] == store.mmap_size

    def test_make_backend_knows_sqlite(self):
        assert isinstance(make_backend("sqlite"), SqliteStore)

    def test_is_sqlite_file_detection(self, tmp_path):
        db = tmp_path / "kg.sqlite"
        SqliteStore(db).add(Triple("a", "p", "b"))
        assert is_sqlite_file(db)
        other = tmp_path / "kg.npz"
        other.write_bytes(b"PK\x03\x04 not a database")
        assert not is_sqlite_file(other)
        assert not is_sqlite_file(tmp_path / "missing")

    def test_not_picklable(self, toy_graph):
        store = toy_graph.to_sqlite().backend
        with pytest.raises(TypeError, match="not picklable"):
            pickle.dumps(store)

    def test_temporary_database_removed_on_close(self):
        store = SqliteStore()
        path = store.path
        store.add(Triple("a", "p", "b"))
        assert path.exists()
        store.close()
        assert not path.exists()

    def test_reopen_preserves_everything(self, tmp_path, toy_graph):
        db = tmp_path / "kg.sqlite"
        original = toy_graph.to_sqlite(path=db)
        digest = original.backend.content_digest()
        triples = tuple(original.backend.iter_triples())
        stats = original.backend.stats()
        original.backend.close()
        reopened = SqliteStore(db)
        assert reopened.content_digest() == digest
        assert tuple(reopened.iter_triples()) == triples
        assert reopened.stats() == stats
        assert reopened.num_triples == toy_graph.num_triples
        # And it keeps accepting adds with continuing positions/rows.
        assert reopened.add(Triple("brand", "new", "triple"))
        assert reopened.num_triples == toy_graph.num_triples + 1

    def test_add_rejects_duplicates_like_other_backends(self):
        store = SqliteStore()
        assert store.add(Triple("a", "p", "b"))
        assert not store.add(Triple("a", "p", "b"))
        assert store.add(Triple("a", "p", "c"))
        assert store.num_triples == 2 and store.num_entities == 1

    def test_out_of_range_accesses_raise(self, toy_graph):
        store = toy_graph.to_sqlite().backend
        with pytest.raises(IndexError):
            store.triple_at(store.num_triples)
        with pytest.raises(IndexError):
            store.cluster_positions_by_row(store.num_entities)
        with pytest.raises(KeyError):
            store.entity_row("no-such-entity")

    def test_labels_roundtrip_and_misaligned_rejected(self, toy_graph):
        store = toy_graph.to_sqlite().backend
        labels = np.zeros(store.num_triples, dtype=bool)
        labels[::2] = True
        store.save_labels(labels)
        np.testing.assert_array_equal(store.load_labels(), labels)
        with pytest.raises(ValueError):
            store.save_labels(np.zeros(store.num_triples + 1, dtype=bool))

    def test_graph_name_recorded(self, toy_graph, tmp_path):
        graph = toy_graph.to_sqlite(path=tmp_path / "named.sqlite", name="my-kg")
        assert graph.backend.graph_name() == "my-kg"


class TestSqliteDrawParity:
    def test_executor_draws_match_columnar(self, nell):
        from repro.sampling.parallel import ParallelSamplingExecutor

        columnar = nell.graph.to_columnar()
        sqlite = columnar.to_sqlite()
        rows = np.arange(48) % columnar.num_entities
        with (
            ParallelSamplingExecutor(columnar, workers=None, num_shards=2) as ex_col,
            ParallelSamplingExecutor(sqlite, workers=None, num_shards=2) as ex_sq,
        ):
            rng_col = np.random.default_rng(2026)
            rng_sq = np.random.default_rng(2026)
            draws_col = columnar.sample_cluster_positions_batch(rows, 5, rng_col, executor=ex_col)
            draws_sq = sqlite.sample_cluster_positions_batch(rows, 5, rng_sq, executor=ex_sq)
        assert all(np.array_equal(a, b) for a, b in zip(draws_col, draws_sq))
        # The RNG streams were consumed identically too.
        assert rng_col.integers(0, 2**62) == rng_sq.integers(0, 2**62)

    def test_shard_plan_matches_columnar(self, nell):
        columnar = nell.graph.to_columnar()
        sqlite = columnar.to_sqlite()
        for shards in (1, 2, 4):
            assert repr(columnar.shard_plan(shards)) == repr(sqlite.shard_plan(shards))

    def test_stats_bit_identical_across_backends(self, nell):
        columnar = nell.graph.to_columnar()
        sqlite = columnar.to_sqlite()
        assert columnar.backend.stats() == sqlite.backend.stats()
        assert nell.graph.backend.stats() == sqlite.backend.stats()


class TestSqliteIngestResume:
    def test_interrupted_ingest_resumes_to_identical_database(self, tmp_path):
        tsv = _write_tsv(tmp_path / "kg.tsv")
        reference = SqliteStore(tmp_path / "ref.sqlite")
        report = reference.ingest_file(tsv, "tsv", batch_size=256)
        assert report["status"] == "done"
        expected = reference.content_digest()

        partial = SqliteStore(tmp_path / "part.sqlite")
        first = partial.ingest_file(tsv, "tsv", batch_size=256, max_batches=4)
        assert first["status"] == "in_progress"
        assert first["rows_this_call"] == 4 * 256
        partial.close()
        resumed = SqliteStore(tmp_path / "part.sqlite")
        second = resumed.ingest_file(tsv, "tsv", batch_size=256)
        assert second["status"] == "done"
        assert second["resumed_from_rows"] == 4 * 256
        assert resumed.content_digest() == expected

    def test_completed_ingest_short_circuits(self, tmp_path):
        tsv = _write_tsv(tmp_path / "kg.tsv", rows=600)
        store = SqliteStore(tmp_path / "kg.sqlite")
        store.ingest_file(tsv, "tsv", batch_size=100)
        before = store.content_digest()
        again = store.ingest_file(tsv, "tsv", batch_size=100)
        assert again["status"] == "done"
        assert again["rows_this_call"] == 0
        assert store.content_digest() == before

    def test_ingest_state_reports_checkpoint(self, tmp_path):
        tsv = _write_tsv(tmp_path / "kg.tsv", rows=600)
        store = SqliteStore(tmp_path / "kg.sqlite")
        store.ingest_file(tsv, "tsv", batch_size=100, max_batches=2)
        state = store.ingest_state(f"tsv:{tsv.resolve()}")
        assert state is not None
        assert (state["batches"], state["rows"], state["status"]) == (2, 200, "in_progress")
        assert store.ingest_state("never-ingested") is None

    def test_ingest_rejects_bad_arguments(self, tmp_path):
        store = SqliteStore()
        with pytest.raises(ValueError, match="format"):
            store.ingest_file(tmp_path / "kg.xml", "xml")
        with pytest.raises(ValueError, match="batch_size"):
            store.ingest_file(tmp_path / "kg.tsv", "tsv", batch_size=0)

    def test_nt_ingest_matches_columnar_loader(self, tmp_path):
        from repro.storage.ingest import ingest_nt

        nt = tmp_path / "kg.nt"
        nt.write_text(
            "<e1> <bornIn> <e2> .\n"
            '<e1> <name> "Ada Lovelace" .\n'
            '<e2> <name> "Analytical\\nEngine"@en .\n'
            "<e2> <knows> <e1> .\n",
            encoding="utf-8",
        )
        columnar = ingest_nt(nt)
        store = SqliteStore(tmp_path / "kg.sqlite")
        store.ingest_file(nt, "nt", batch_size=2)
        assert tuple(store.iter_triples()) == tuple(columnar.backend.iter_triples())
        for left, right in zip(store.id_columns(), columnar.backend.id_columns()):
            assert np.array_equal(np.asarray(left), np.asarray(right))

    @pytest.mark.timeout(120)
    def test_sigkill_mid_load_resumes_byte_identical(self, tmp_path):
        """Kill the loader with SIGKILL right after a batch commit; the
        reopened database must resume from the checkpoint and finish with
        the same content digest as an uninterrupted load."""
        tsv = _write_tsv(tmp_path / "kg.tsv")
        reference = SqliteStore(tmp_path / "ref.sqlite")
        reference.ingest_file(tsv, "tsv", batch_size=256)
        expected = reference.content_digest()

        victim_db = tmp_path / "victim.sqlite"
        script = textwrap.dedent(
            f"""
            import os, signal
            from repro.storage.sqlite import SqliteStore

            class KilledAtBatch(SqliteStore):
                def _checkpoint(self, source, batches, rows, status, commit=True):
                    super()._checkpoint(source, batches, rows, status, commit=commit)
                    if status == "in_progress" and batches == 3 and not commit:
                        # Commit the batch like the normal loop would, then
                        # die without any cleanup.
                        self._conn.execute("COMMIT")
                        os.kill(os.getpid(), signal.SIGKILL)

            store = KilledAtBatch({str(victim_db)!r})
            store.ingest_file({str(tsv)!r}, "tsv", batch_size=256)
            """
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
        proc = subprocess.run([sys.executable, "-c", script], env=env, timeout=60)
        assert proc.returncode == -signal.SIGKILL

        survivor = SqliteStore(victim_db)
        state = survivor.ingest_state(f"tsv:{tsv.resolve()}")
        assert state is not None and state["status"] == "in_progress"
        assert state["batches"] == 3
        report = survivor.ingest_file(tsv, "tsv", batch_size=256)
        assert report["status"] == "done"
        assert report["resumed_from_rows"] == 3 * 256
        assert survivor.content_digest() == expected


class TestSqliteCLI:
    def test_snapshot_then_evaluate_from_sqlite(self, capsys, tmp_path):
        target = str(tmp_path / "movie.sqlite")
        assert (
            main(
                [
                    "snapshot",
                    "--dataset",
                    "movie",
                    "--out",
                    target,
                    "--backend",
                    "sqlite",
                    "--with-labels",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "sqlite database" in out
        assert is_sqlite_file(target)
        exit_code = main(["evaluate", "--from-snapshot", target, "--seed", "4", "--moe", "0.1"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "estimated accuracy" in out

    def test_evaluate_backend_sqlite_matches_columnar(self, capsys):
        args = ["evaluate", "--dataset", "movie", "--seed", "11", "--moe", "0.1"]
        assert main(args + ["--backend", "sqlite"]) == 0
        sqlite_out = capsys.readouterr().out
        assert main(args + ["--backend", "columnar"]) == 0
        columnar_out = capsys.readouterr().out
        assert sqlite_out == columnar_out

    def test_sqlite_snapshot_without_labels_fails_evaluate(self, capsys, tmp_path):
        target = str(tmp_path / "plain.sqlite")
        assert (
            main(["snapshot", "--dataset", "movie", "--out", target, "--backend", "sqlite"]) == 0
        )
        capsys.readouterr()
        with pytest.raises(SystemExit, match="no label array"):
            main(["evaluate", "--from-snapshot", target])


def test_graph_to_sqlite_is_idempotent(toy_graph):
    sqlite_graph = toy_graph.to_sqlite()
    assert sqlite_graph.to_sqlite() is sqlite_graph
    assert isinstance(sqlite_graph.backend, SqliteStore)
    assert tuple(sqlite_graph) == tuple(toy_graph)


def test_knowledge_graph_over_sqlite_supports_object_surface(nell):
    from repro.sampling.twcs import TwoStageWeightedClusterDesign

    columnar = nell.graph.to_columnar()
    sqlite = columnar.to_sqlite()
    design_col = TwoStageWeightedClusterDesign(columnar, second_stage_size=3, seed=5)
    design_sq = TwoStageWeightedClusterDesign(sqlite, second_stage_size=3, seed=5)
    units_col, units_sq = design_col.draw(25), design_sq.draw(25)
    assert [u.triples for u in units_col] == [u.triples for u in units_sq]
    assert [u.entity_id for u in units_col] == [u.entity_id for u in units_sq]
