#!/usr/bin/env python3
"""Documentation checks for the docs/ site and README.

Two classes of rot this catches, both run by the CI ``docs`` job and both
cheap enough to run locally before every docs edit::

    python tools/check_docs.py

1. **Dead relative links.** Every ``[text](target)`` whose target is not an
   absolute URL or a pure in-page anchor must resolve to a file that exists,
   relative to the markdown file containing it (fragments are stripped).

2. **Stale CLI examples.** Every ``repro ...`` invocation inside a fenced
   ``bash`` or ``console`` block is re-parsed against the real
   :func:`repro.cli.build_parser` — smoke mode: nothing is executed, but a
   renamed flag, removed subcommand or newly-required option fails the
   check.  In ``console`` blocks only ``$``-prefixed lines are commands
   (the rest is output); in ``bash`` blocks every non-comment line is.
   Each documented subcommand's ``--help`` must also still render.

Exits non-zero with one line per problem.
"""

from __future__ import annotations

import argparse
import contextlib
import io
import re
import shlex
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^```(bash|console)\s*\n(.*?)^```\s*$", re.S | re.M)


def doc_files() -> list[Path]:
    return [ROOT / "README.md", *sorted((ROOT / "docs").glob("**/*.md"))]


def check_links(path: Path, errors: list[str]) -> None:
    text = path.read_text(encoding="utf-8")
    for target in LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            errors.append(f"{path.relative_to(ROOT)}: dead link -> {target}")


def _command_lines(kind: str, body: str) -> list[str]:
    """Join continuation lines, keep only lines that are commands."""
    joined: list[str] = []
    pending = ""
    for raw in body.splitlines():
        line = pending + raw.rstrip()
        if line.endswith("\\"):
            pending = line[:-1] + " "
            continue
        pending = ""
        joined.append(line)
    commands = []
    for line in joined:
        stripped = line.strip()
        if kind == "console":
            if not stripped.startswith("$"):
                continue  # output line
            stripped = stripped[1:].strip()
        if not stripped or stripped.startswith("#"):
            continue
        commands.append(stripped)
    return commands


def _repro_argv(command: str) -> list[str] | None:
    """The argv after ``repro`` for a command line, or None if not repro."""
    try:
        tokens = shlex.split(command)
    except ValueError:
        return None
    for index, token in enumerate(tokens):
        if token == "-m" and tokens[index + 1 : index + 2] == ["repro"]:
            return tokens[index + 2 :]
    if tokens and tokens[0] == "repro":
        return tokens[1:]
    return None


def check_cli_examples(path: Path, errors: list[str]) -> None:
    from repro.cli import build_parser

    text = path.read_text(encoding="utf-8")
    for kind, body in FENCE_RE.findall(text):
        for command in _command_lines(kind, body):
            argv = _repro_argv(command)
            if argv is None or "--help" in argv:
                continue
            parser = build_parser()
            try:
                with contextlib.redirect_stderr(io.StringIO()) as captured:
                    parser.parse_args(argv)
            except SystemExit:
                errors.append(
                    f"{path.relative_to(ROOT)}: example no longer parses: "
                    f"`repro {' '.join(argv)}` ({captured.getvalue().strip().splitlines()[-1]})"
                )


def check_help_renders(errors: list[str]) -> None:
    from repro.cli import build_parser

    parser = build_parser()
    subcommands = [
        name
        for action in parser._actions
        if isinstance(action, argparse._SubParsersAction)
        for name in action.choices
    ]
    for argv in [["--help"], *([name, "--help"] for name in subcommands)]:
        try:
            with contextlib.redirect_stdout(io.StringIO()):
                build_parser().parse_args(argv)
        except SystemExit as exit_:
            if exit_.code not in (0, None):
                errors.append(f"`repro {' '.join(argv)}` exited {exit_.code}")
        else:  # pragma: no cover - argparse always exits on --help
            errors.append(f"`repro {' '.join(argv)}` did not exit")


def main() -> int:
    errors: list[str] = []
    for path in doc_files():
        if not path.exists():
            errors.append(f"missing documentation file: {path.relative_to(ROOT)}")
            continue
        check_links(path, errors)
        check_cli_examples(path, errors)
    check_help_renders(errors)
    if errors:
        for error in errors:
            print(error, file=sys.stderr)
        print(f"\n{len(errors)} documentation problem(s)", file=sys.stderr)
        return 1
    print(f"docs OK: {len(doc_files())} files checked")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
